// Parameterized property sweep of the inference engine across the full
// model-variant space (attention kind x time encoder x pruning budget):
// every combination must be deterministic, produce finite embeddings,
// keep per-vertex memory timestamps non-decreasing, and respect the FIFO
// capacity — the invariants the hardware Updater is built to preserve.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::core {
namespace {

using Variant = std::tuple<AttentionKind, TimeEncoderKind, std::size_t>;

class EngineSweep : public ::testing::TestWithParam<Variant> {
 protected:
  static data::Dataset make_ds() {
    data::SyntheticConfig dcfg;
    dcfg.num_users = 50;
    dcfg.num_items = 20;
    dcfg.num_edges = 500;
    dcfg.edge_dim = 7;
    dcfg.seed = 13;
    return data::make_synthetic(dcfg);
  }

  static ModelConfig make_cfg(const data::Dataset& ds) {
    const auto [attn, enc, budget] = GetParam();
    ModelConfig cfg;
    cfg.mem_dim = 9;
    cfg.time_dim = 5;
    cfg.emb_dim = 7;
    cfg.edge_dim = ds.edge_dim();
    cfg.num_neighbors = 5;
    cfg.attention = attn;
    cfg.time_encoder = enc;
    cfg.lut_bins = 8;
    cfg.prune_budget = budget;
    return cfg;
  }
};

TEST_P(EngineSweep, DeterministicAndFinite) {
  const auto ds = make_ds();
  const auto cfg = make_cfg(ds);
  TgnModel model(cfg, 1);
  if (model.lut_encoder())
    model.fit_lut(collect_dt_samples(ds, ds.train_range()));

  auto run = [&]() {
    InferenceEngine engine(model, ds, true);
    Tensor last;
    for (const auto& b : ds.graph.fixed_size_batches(0, 400, 80))
      last = engine.process_batch(b).embeddings;
    return last;
  };
  const Tensor a = run();
  const Tensor b = run();
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(std::isfinite(a[i])) << "element " << i;
  EXPECT_GT(a.abs_max(), 0.0f);  // warm state: nonzero embeddings
}

TEST_P(EngineSweep, MemoryTimestampsNonDecreasing) {
  const auto ds = make_ds();
  const auto cfg = make_cfg(ds);
  TgnModel model(cfg, 1);
  if (model.lut_encoder())
    model.fit_lut(collect_dt_samples(ds, ds.train_range()));
  InferenceEngine engine(model, ds, true);

  std::vector<double> last_ts(ds.num_nodes(), 0.0);
  for (const auto& b : ds.graph.fixed_size_batches(0, 500, 60)) {
    engine.process_batch(b);
    for (graph::NodeId v = 0; v < ds.num_nodes(); ++v) {
      const double ts = engine.state().memory.last_update(v);
      EXPECT_GE(ts, last_ts[v]) << "node " << v;
      last_ts[v] = ts;
    }
  }
}

TEST_P(EngineSweep, FifoNeverExceedsCapacity) {
  const auto ds = make_ds();
  const auto cfg = make_cfg(ds);
  TgnModel model(cfg, 1);
  if (model.lut_encoder())
    model.fit_lut(collect_dt_samples(ds, ds.train_range()));
  InferenceEngine engine(model, ds, true);
  for (const auto& b : ds.graph.fixed_size_batches(0, 500, 100))
    engine.process_batch(b);
  for (graph::NodeId v = 0; v < ds.num_nodes(); ++v)
    EXPECT_LE(engine.state().table->fill(v), cfg.num_neighbors);
}

std::string variant_name(const ::testing::TestParamInfo<Variant>& info) {
  const AttentionKind attn = std::get<0>(info.param);
  const TimeEncoderKind enc = std::get<1>(info.param);
  const std::size_t budget = std::get<2>(info.param);
  std::string name = attn == AttentionKind::kVanilla ? "vanilla" : "sat";
  name += enc == TimeEncoderKind::kCos ? "_cos" : "_lut";
  name += "_np" + std::to_string(budget);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, EngineSweep,
    ::testing::Values(
        Variant{AttentionKind::kVanilla, TimeEncoderKind::kCos, 0},
        Variant{AttentionKind::kVanilla, TimeEncoderKind::kLut, 0},
        Variant{AttentionKind::kSimplified, TimeEncoderKind::kCos, 0},
        Variant{AttentionKind::kSimplified, TimeEncoderKind::kLut, 0},
        Variant{AttentionKind::kSimplified, TimeEncoderKind::kLut, 3},
        Variant{AttentionKind::kSimplified, TimeEncoderKind::kLut, 1},
        Variant{AttentionKind::kSimplified, TimeEncoderKind::kCos, 2}),
    variant_name);

}  // namespace
}  // namespace tgnn::core
