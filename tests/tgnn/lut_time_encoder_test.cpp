#include "tgnn/lut_time_encoder.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

std::vector<double> power_law_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = rng.pareto(1.0, 1.2) - 1.0;
  return out;
}

TEST(LutTimeEncoder, RequiresFitBeforeUse) {
  LutTimeEncoder enc(8, 4);
  EXPECT_FALSE(enc.fitted());
  EXPECT_THROW((void)enc.bin_of(1.0), std::logic_error);
}

TEST(LutTimeEncoder, EdgesAreStrictlyIncreasing) {
  LutTimeEncoder enc(16, 4);
  enc.fit(power_law_samples(5000, 1), nullptr);
  const auto& edges = enc.edges();
  ASSERT_EQ(edges.size(), 15u);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_GT(edges[i], edges[i - 1]);
}

TEST(LutTimeEncoder, EqualFrequencyBinning) {
  // Each bin should receive roughly samples/bins of the fitted samples —
  // the §III-C design ("equal number of dt occurrences in each interval").
  LutTimeEncoder enc(8, 2);
  const auto samples = power_law_samples(8000, 2);
  enc.fit(samples, nullptr);
  std::vector<int> counts(8, 0);
  for (double s : samples) ++counts[enc.bin_of(s)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(LutTimeEncoder, BinOfRespectsEdges) {
  LutTimeEncoder enc(4, 2);
  enc.fit({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}, nullptr);
  EXPECT_EQ(enc.bin_of(-5.0), 0u);   // below all edges
  EXPECT_EQ(enc.bin_of(1e12), 3u);   // above all edges (open-ended last bin)
  const auto& e = enc.edges();
  EXPECT_EQ(enc.bin_of(e[0] - 1e-9), 0u);
  EXPECT_EQ(enc.bin_of(e[0]), 1u);  // upper_bound: edge belongs to next bin
}

TEST(LutTimeEncoder, InitFromCosEncoderApproximates) {
  Rng rng(3);
  CosTimeEncoder cos_enc(6, rng);
  LutTimeEncoder lut(128, 6);
  lut.fit(power_law_samples(20000, 4), &cos_enc);

  // The LUT is a piecewise-constant fit of the cos encoder: at a bin's
  // median the entries agree closely.
  Tensor lut_out(1, 6), cos_out(1, 6);
  double dt = 0.5;
  lut.encode_scalar(dt, lut_out.row(0));
  cos_enc.encode_scalar(dt, cos_out.row(0));
  // Not exact (dt is not necessarily the bin median) but bounded.
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_NEAR(lut_out(0, k), cos_out(0, k), 0.7f);
}

TEST(LutTimeEncoder, EncodeIsTableRead) {
  LutTimeEncoder enc(4, 3);
  enc.fit({1, 2, 3, 4}, nullptr);
  enc.entries.value(2, 1) = 9.0f;
  Tensor out(1, 3);
  const auto& e = enc.edges();
  enc.encode_scalar((e[1] + e[2]) / 2.0, out.row(0));  // falls in bin 2
  EXPECT_EQ(out(0, 1), 9.0f);
  EXPECT_EQ(enc.macs_per_encode(), 0u);
}

TEST(LutTimeEncoder, BackwardAccumulatesIntoBins) {
  LutTimeEncoder enc(4, 2);
  enc.fit({1, 2, 3, 4}, nullptr);
  const std::vector<double> dts = {0.0, 0.0, 1e12};
  Tensor dout(3, 2);
  dout.fill(1.0f);
  enc.backward(dts, dout);
  EXPECT_EQ(enc.entries.grad(0, 0), 2.0f);  // two samples in bin 0
  EXPECT_EQ(enc.entries.grad(3, 0), 1.0f);  // one in the last bin
  EXPECT_EQ(enc.entries.grad(1, 0), 0.0f);
}

TEST(LutTimeEncoder, FuseWithEqualsMatmul) {
  // The on-chip trick: fused[b] = W * entry_b. Check against explicit GEMM.
  Rng rng(5);
  LutTimeEncoder enc(8, 4);
  enc.fit(power_law_samples(100, 6), nullptr);
  for (std::size_t i = 0; i < enc.entries.value.size(); ++i)
    enc.entries.value[i] = rng.uniform(-1.0f, 1.0f);
  const Tensor w = Tensor::randn(5, 4, rng);
  const Tensor fused = enc.fuse_with(w);
  ASSERT_EQ(fused.rows(), 8u);
  ASSERT_EQ(fused.cols(), 5u);
  for (std::size_t b = 0; b < 8; ++b)
    for (std::size_t o = 0; o < 5; ++o) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 4; ++k)
        acc += w(o, k) * enc.entries.value(b, k);
      EXPECT_NEAR(fused(b, o), acc, 1e-5f);
    }
}

TEST(LutTimeEncoder, FusedBytes) {
  LutTimeEncoder enc(128, 100);
  EXPECT_EQ(enc.fused_bytes(400), 128u * 400u * 4u);
}

TEST(LutTimeEncoder, RejectsBadConstruction) {
  EXPECT_THROW(LutTimeEncoder(1, 4), std::invalid_argument);
  LutTimeEncoder enc(4, 2);
  EXPECT_THROW(enc.fit({}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::core
