#include "tgnn/time_encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

TEST(CosTimeEncoder, MatchesEquation6) {
  Rng rng(1);
  CosTimeEncoder enc(8, rng);
  Tensor out(1, 8);
  enc.encode_scalar(3.5, out.row(0));
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_NEAR(out(0, k),
                std::cos(enc.omega.value[k] * 3.5f + enc.phi.value[k]), 1e-6f);
}

TEST(CosTimeEncoder, OutputBounded) {
  Rng rng(2);
  CosTimeEncoder enc(16, rng);
  const auto out = enc.encode({0.0, 1.0, 1e6, 1e-6});
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(out[i], 1.0f);
    EXPECT_GE(out[i], -1.0f);
  }
}

TEST(CosTimeEncoder, FrequenciesSpanDecades) {
  Rng rng(3);
  CosTimeEncoder enc(10, rng);
  EXPECT_GT(enc.omega.value[0] / enc.omega.value[9], 1e6f);
}

TEST(CosTimeEncoder, BatchMatchesScalar) {
  Rng rng(4);
  CosTimeEncoder enc(6, rng);
  const std::vector<double> dts = {0.0, 2.0, 50.0};
  const Tensor batch = enc.encode(dts);
  Tensor row(1, 6);
  for (std::size_t i = 0; i < dts.size(); ++i) {
    enc.encode_scalar(dts[i], row.row(0));
    for (std::size_t k = 0; k < 6; ++k) EXPECT_EQ(batch(i, k), row(0, k));
  }
}

TEST(CosTimeEncoder, GradCheck) {
  Rng rng(5);
  CosTimeEncoder enc(5, rng);
  const std::vector<double> dts = {0.3, 2.0, 0.0};

  auto loss = [&]() {
    const Tensor out = enc.encode(dts);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) s += 0.5 * out[i] * out[i];
    return s;
  };
  nn::ParamStore store;
  for (auto* p : enc.parameters()) store.add(p);
  store.zero_grad();
  const Tensor out = enc.encode(dts);
  enc.backward(dts, out);
  const auto res = nn::check_gradients(store, loss, 1e-4);
  EXPECT_LT(res.max_rel_err, 2e-2) << res.worst_param;
}

TEST(CosTimeEncoder, MacsPerEncodeIsDim) {
  Rng rng(6);
  CosTimeEncoder enc(32, rng);
  EXPECT_EQ(enc.macs_per_encode(), 32u);
}

TEST(CosTimeEncoder, RejectsWrongSpanSize) {
  Rng rng(7);
  CosTimeEncoder enc(4, rng);
  std::vector<float> out(3);
  EXPECT_THROW(enc.encode_scalar(1.0, out), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::core
