#include "tgnn/inference.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

ModelConfig tiny_cfg(const data::Dataset& ds) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.node_dim = ds.node_dim();
  cfg.num_neighbors = 5;
  return cfg;
}

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

TEST(InferenceEngine, DeterministicAcrossRuns) {
  const auto ds = tiny_ds();
  const auto cfg = tiny_cfg(ds);
  TgnModel model(cfg, 1);

  auto run = [&]() {
    InferenceEngine engine(model, ds, true);
    Tensor last;
    for (const auto& b : ds.graph.fixed_size_batches(0, 200, 50))
      last = engine.process_batch(b).embeddings;
    return last;
  };
  const Tensor a = run();
  const Tensor b = run();
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0f);
}

TEST(InferenceEngine, EmbeddingsCoverAllInvolvedNodes) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  const graph::BatchRange r{0, 50};
  const auto res = engine.process_batch(r);
  for (const auto& e : ds.graph.edges(r)) {
    EXPECT_TRUE(res.index.count(e.src));
    EXPECT_TRUE(res.index.count(e.dst));
  }
  EXPECT_EQ(res.embeddings.rows(), res.nodes.size());
  EXPECT_EQ(res.embeddings.cols(), 6u);
}

TEST(InferenceEngine, ExtraNodesGetEmbeddingsWithoutStateChange) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  engine.warmup({0, 100});

  // Pick a node NOT in the next batch.
  const graph::BatchRange r{100, 120};
  graph::NodeId outsider = 0;
  bool found = false;
  for (graph::NodeId v = 0; v < ds.num_nodes() && !found; ++v) {
    bool in_batch = false;
    for (const auto& e : ds.graph.edges(r))
      if (e.src == v || e.dst == v) in_batch = true;
    if (!in_batch) {
      outsider = v;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const auto mem_before = engine.state().memory.get(outsider);
  std::vector<float> before(mem_before.begin(), mem_before.end());
  const std::vector<graph::NodeId> extras = {outsider};
  const auto res = engine.process_batch(r, extras);
  EXPECT_TRUE(res.index.count(outsider));
  const auto mem_after = engine.state().memory.get(outsider);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], mem_after[i]);
}

TEST(InferenceEngine, MemoryAdvancesForActiveNodes) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  // First batch: mailboxes empty, memory stays zero. Process two batches so
  // nodes seen twice get GRU updates.
  engine.process_batch({0, 100});
  engine.process_batch({100, 200});
  // Some node must have nonzero memory now.
  bool any_nonzero = false;
  for (graph::NodeId v = 0; v < ds.num_nodes(); ++v) {
    for (float x : engine.state().memory.get(v))
      if (x != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(InferenceEngine, MailConsumeOnce) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  engine.process_batch({0, 200});
  // After processing, every node touched in the batch has fresh mail; the
  // mail_valid flags of batch nodes were re-armed by the mailbox writes.
  const auto& e0 = ds.graph.edge(199);
  EXPECT_TRUE(engine.state().mailbox.has_mail(e0.src));
  EXPECT_TRUE(engine.state().mail_valid[e0.src]);
}

TEST(InferenceEngine, ResetRestoresInitialBehaviour) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  const Tensor first = engine.process_batch({0, 60}).embeddings;
  engine.process_batch({60, 120});
  engine.reset();
  const Tensor again = engine.process_batch({0, 60}).embeddings;
  EXPECT_EQ(ops::max_abs_diff(first, again), 0.0f);
}

TEST(InferenceEngine, WarmupMatchesProcessForState) {
  // warmup() must leave the same memory/mailbox state as process_batch()
  // (it skips only the GNN stage, which doesn't write state).
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine a(model, ds, true), b(model, ds, true);
  for (const auto& r : ds.graph.fixed_size_batches(0, 200, 50))
    a.process_batch(r);
  b.warmup({0, 200}, 50);
  for (graph::NodeId v = 0; v < ds.num_nodes(); ++v) {
    const auto ma = a.state().memory.get(v);
    const auto mb = b.state().memory.get(v);
    for (std::size_t i = 0; i < ma.size(); ++i)
      EXPECT_NEAR(ma[i], mb[i], 1e-6f) << "node " << v;
  }
}

TEST(InferenceEngine, PartTimesAccumulate) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  InferenceEngine engine(model, ds, true);
  PartTimes t;
  engine.process_batch({0, 100}, {}, &t);
  EXPECT_GT(t.total(), 0.0);
  EXPECT_GE(t.gnn, 0.0);
  EXPECT_GE(t.memory, 0.0);
}

TEST(InferenceEngine, SimplifiedModelRuns) {
  const auto ds = tiny_ds();
  auto cfg = tiny_cfg(ds);
  cfg.attention = AttentionKind::kSimplified;
  cfg.time_encoder = TimeEncoderKind::kLut;
  cfg.prune_budget = 2;
  TgnModel model(cfg, 1);
  model.fit_lut(collect_dt_samples(ds, {0, ds.train_end}));
  InferenceEngine engine(model, ds, true);
  // The very first batch sees zero memory and an empty neighbor table, so
  // its embeddings are exactly W_o [0 || 0] + b_o = 0; the second batch has
  // neighbors and mail to aggregate.
  engine.process_batch({0, 100});
  const auto res = engine.process_batch({100, 200});
  EXPECT_GT(res.embeddings.abs_max(), 0.0f);
}

TEST(InferenceEngine, EvaluateApInUnitRange) {
  const auto ds = tiny_ds();
  TgnModel model(tiny_cfg(ds), 1);
  Rng drng(3);
  Decoder dec(tiny_cfg(ds), drng);
  InferenceEngine engine(model, ds, true);
  engine.warmup({0, ds.val_end});
  Rng rng(5);
  const double ap = engine.evaluate_ap(ds.test_range(), dec, 50, rng);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST(CollectDtSamples, PositiveAndNonEmpty) {
  const auto ds = tiny_ds();
  const auto dts = collect_dt_samples(ds, {0, ds.num_edges()});
  ASSERT_FALSE(dts.empty());
  for (double d : dts) EXPECT_GE(d, 0.0);
}

}  // namespace
}  // namespace tgnn::core
