#include "tgnn/attention.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

ModelConfig small_cfg() {
  ModelConfig cfg;
  cfg.mem_dim = 5;
  cfg.time_dim = 3;
  cfg.emb_dim = 4;
  cfg.edge_dim = 2;
  cfg.num_neighbors = 4;
  return cfg;
}

AttnNodeInput random_input(const ModelConfig& cfg, std::size_t n, Rng& rng) {
  AttnNodeInput in;
  in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng);
  in.kv_in = Tensor::randn(n, cfg.kv_in_dim(), rng);
  return in;
}

TEST(VanillaAttention, OutputShape) {
  Rng rng(1);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  const auto in = random_input(cfg, 3, rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  const Tensor h = att.forward(f.row(0), in);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), cfg.emb_dim);
}

TEST(VanillaAttention, ZeroNeighborsPassesSelfThroughFtm) {
  Rng rng(2);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  AttnNodeInput in;
  in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng);
  in.kv_in = Tensor(0, cfg.kv_in_dim());
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  const Tensor h = att.forward(f.row(0), in);
  // Expected: W_o [0 || f] + b_o.
  Tensor fo(1, cfg.emb_dim + cfg.mem_dim);
  for (std::size_t d = 0; d < cfg.mem_dim; ++d)
    fo(0, cfg.emb_dim + d) = f(0, d);
  const Tensor expect = att.wo.forward(fo);
  for (std::size_t d = 0; d < cfg.emb_dim; ++d)
    EXPECT_NEAR(h(0, d), expect(0, d), 1e-5f);
}

TEST(VanillaAttention, AlphaSumsToOne) {
  Rng rng(3);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  const auto in = random_input(cfg, 4, rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  VanillaAttention::Cache cache;
  att.forward(f.row(0), in, &cache);
  float total = 0.0f;
  for (std::size_t j = 0; j < 4; ++j) total += cache.alpha(0, j);
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(VanillaAttention, LogitsMatchCachedForward) {
  Rng rng(4);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  const auto in = random_input(cfg, 3, rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  VanillaAttention::Cache cache;
  att.forward(f.row(0), in, &cache);
  const auto logits = att.logits(f.row(0), in);
  ASSERT_EQ(logits.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(logits[j], cache.logits(0, j), 1e-5f);
}

TEST(VanillaAttention, ScalingBySqrtN) {
  // Doubling all K magnitudes doubles logits; scaling is 1/sqrt(n), checked
  // indirectly: with identical rows, alpha is uniform regardless of scale.
  Rng rng(5);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  AttnNodeInput in;
  in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng);
  Tensor row = Tensor::randn(1, cfg.kv_in_dim(), rng);
  in.kv_in = Tensor(3, cfg.kv_in_dim());
  for (std::size_t j = 0; j < 3; ++j)
    std::copy(row.row(0).begin(), row.row(0).end(), in.kv_in.row(j).begin());
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  VanillaAttention::Cache cache;
  att.forward(f.row(0), in, &cache);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(cache.alpha(0, j), 1.0f / 3.0f, 1e-5f);
}

TEST(VanillaAttention, GradCheckParameters) {
  Rng rng(6);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  const auto in = random_input(cfg, 3, rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);

  auto loss = [&]() {
    const Tensor h = att.forward(f.row(0), in);
    double s = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) s += 0.5 * h[i] * h[i];
    return s;
  };
  nn::ParamStore store;
  store.add_all(att.parameters());
  store.zero_grad();
  VanillaAttention::Cache cache;
  const Tensor h = att.forward(f.row(0), in, &cache);
  att.backward(cache, h);
  // eps = 1e-2 to beat float32 rounding in the central differences.
  // Loose tolerance: the K-path bias gradients nearly cancel through the
  // softmax, so float32 central differences are noisy there. The exact
  // chain is cross-validated by GradCheckInputs below (input grads don't
  // suffer the cancellation).
  const auto res = nn::check_gradients(store, loss, 1e-2);
  EXPECT_LT(res.max_rel_err, 0.2) << res.worst_param;
}

TEST(VanillaAttention, GradCheckInputs) {
  Rng rng(7);
  const auto cfg = small_cfg();
  VanillaAttention att(cfg, rng);
  auto in = random_input(cfg, 2, rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);

  VanillaAttention::Cache cache;
  const Tensor h = att.forward(f.row(0), in, &cache);
  const auto g = att.backward(cache, h);

  auto loss_of = [&](const AttnNodeInput& input) {
    const Tensor out = att.forward(f.row(0), input);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) s += 0.5 * out[i] * out[i];
    return s;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < in.kv_in.size(); i += 2) {
    AttnNodeInput p = in, m = in;
    p.kv_in[i] += static_cast<float>(eps);
    m.kv_in[i] -= static_cast<float>(eps);
    const double numeric = (loss_of(p) - loss_of(m)) / (2 * eps);
    EXPECT_NEAR(numeric, g.dkv_in[i],
                5e-2 * std::max(1.0, std::fabs(numeric)));
  }
  for (std::size_t i = 0; i < in.q_in.size(); ++i) {
    AttnNodeInput p = in, m = in;
    p.q_in[i] += static_cast<float>(eps);
    m.q_in[i] -= static_cast<float>(eps);
    const double numeric = (loss_of(p) - loss_of(m)) / (2 * eps);
    EXPECT_NEAR(numeric, g.dq_in[i],
                5e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

}  // namespace
}  // namespace tgnn::core
