#include "tgnn/simplified_attention.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

ModelConfig small_cfg() {
  ModelConfig cfg;
  cfg.mem_dim = 5;
  cfg.time_dim = 3;
  cfg.emb_dim = 4;
  cfg.edge_dim = 2;
  cfg.num_neighbors = 6;
  cfg.attention = AttentionKind::kSimplified;
  return cfg;
}

TEST(SimplifiedAttention, ScoreMasksEmptySlots) {
  Rng rng(1);
  SimplifiedAttention sat(small_cfg(), rng);
  const auto s = sat.score({1.0, 2.0}, 0);  // 2 valid of 6 slots
  ASSERT_EQ(s.logits.size(), 6u);
  EXPECT_TRUE(std::isfinite(s.logits[0]));
  EXPECT_TRUE(std::isfinite(s.logits[1]));
  for (std::size_t i = 2; i < 6; ++i)
    EXPECT_TRUE(std::isinf(s.logits[i]) && s.logits[i] < 0);
  EXPECT_EQ(s.keep.size(), 2u);
}

TEST(SimplifiedAttention, BudgetSelectsTopLogits) {
  Rng rng(2);
  SimplifiedAttention sat(small_cfg(), rng);
  // Force known logits via a and zero Wt.
  sat.wt.value.zero();
  for (std::size_t i = 0; i < 6; ++i) sat.a.value[i] = static_cast<float>(i);
  const auto s = sat.score({1, 1, 1, 1, 1, 1}, 3);
  ASSERT_EQ(s.keep.size(), 3u);
  // Top-3 logits are slots 3, 4, 5; keep is sorted ascending.
  EXPECT_EQ(s.keep[0], 3u);
  EXPECT_EQ(s.keep[1], 4u);
  EXPECT_EQ(s.keep[2], 5u);
}

TEST(SimplifiedAttention, BudgetClippedToValidCount) {
  Rng rng(3);
  SimplifiedAttention sat(small_cfg(), rng);
  const auto s = sat.score({1.0, 2.0}, 5);
  EXPECT_EQ(s.keep.size(), 2u);
}

TEST(SimplifiedAttention, RejectsTooManyDts) {
  Rng rng(4);
  SimplifiedAttention sat(small_cfg(), rng);
  EXPECT_THROW(sat.score(std::vector<double>(7, 1.0), 0),
               std::invalid_argument);
}

TEST(SimplifiedAttention, AggregateAlphaIsSoftmaxOverKept) {
  Rng rng(5);
  const auto cfg = small_cfg();
  SimplifiedAttention sat(cfg, rng);
  const auto s = sat.score({1.0, 5.0, 10.0, 0.1}, 2);
  Tensor v_in = Tensor::randn(s.keep.size(), cfg.kv_in_dim(), rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  SimplifiedAttention::Cache cache;
  sat.aggregate(f.row(0), s, v_in, &cache);
  float total = 0.0f;
  for (float a : cache.alpha) {
    EXPECT_GT(a, 0.0f);
    total += a;
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(SimplifiedAttention, ZeroNeighborsStillTransformsSelf) {
  Rng rng(6);
  const auto cfg = small_cfg();
  SimplifiedAttention sat(cfg, rng);
  const auto s = sat.score({}, 0);
  EXPECT_TRUE(s.keep.empty());
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  const Tensor h =
      sat.aggregate(f.row(0), s, Tensor(0, cfg.kv_in_dim()));
  // h = W_o [0 || f] + b_o, nonzero in general.
  EXPECT_EQ(h.cols(), cfg.emb_dim);
  EXPECT_GT(h.abs_max(), 0.0f);
}

TEST(SimplifiedAttention, LogitsDependOnlyOnDt) {
  // Eq. 16's point: scores must be computable before any feature fetch.
  Rng rng(7);
  SimplifiedAttention sat(small_cfg(), rng);
  const auto s1 = sat.score({1.0, 2.0, 3.0}, 0);
  const auto s2 = sat.score({1.0, 2.0, 3.0}, 0);
  for (std::size_t i = 0; i < s1.logits.size(); ++i)
    EXPECT_EQ(s1.logits[i], s2.logits[i]);
}

TEST(SimplifiedAttention, GradCheckParameters) {
  Rng rng(8);
  const auto cfg = small_cfg();
  SimplifiedAttention sat(cfg, rng);
  const std::vector<double> dts = {0.5, 4.0, 9.0, 1.5};
  const std::size_t budget = 3;
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  // Fix v_in for the KEPT slots of the current parameters. Note: pruning
  // (top-k selection) is a discontinuous operation; the gradient check uses
  // a budget selection that is stable under the small parameter epsilon.
  const auto s0 = sat.score(dts, budget);
  const Tensor v_in = Tensor::randn(s0.keep.size(), cfg.kv_in_dim(), rng);

  auto loss = [&]() {
    const auto s = sat.score(dts, budget);
    const Tensor h = sat.aggregate(f.row(0), s, v_in);
    double acc = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) acc += 0.5 * h[i] * h[i];
    return acc;
  };
  nn::ParamStore store;
  store.add_all(sat.parameters());
  store.zero_grad();
  SimplifiedAttention::Cache cache;
  const Tensor h = sat.aggregate(f.row(0), s0, v_in, &cache);
  sat.backward(cache, h);
  const auto res = nn::check_gradients(store, loss, 1e-2);
  EXPECT_LT(res.max_rel_err, 5e-2) << res.worst_param;
}

TEST(SimplifiedAttention, BackwardLogitsAccumulatesAandWt) {
  Rng rng(9);
  SimplifiedAttention sat(small_cfg(), rng);
  const auto s = sat.score({2.0, 3.0}, 0);
  std::vector<float> dlogits(6, 0.0f);
  dlogits[0] = 1.0f;
  dlogits[5] = 1.0f;  // masked slot: must be ignored
  sat.backward_logits(s, dlogits);
  EXPECT_EQ(sat.a.grad[0], 1.0f);
  EXPECT_EQ(sat.a.grad[5], 0.0f);
  EXPECT_NEAR(sat.wt.grad(0, 0), std::log1p(2.0f), 1e-5f);
  EXPECT_NEAR(sat.wt.grad(0, 1), std::log1p(3.0f), 1e-5f);
  EXPECT_EQ(sat.wt.grad(5, 0), 0.0f);
}

TEST(SimplifiedAttention, PrunedAggregateUsesOnlyKeptRows) {
  Rng rng(10);
  const auto cfg = small_cfg();
  SimplifiedAttention sat(cfg, rng);
  EXPECT_THROW(
      sat.aggregate(Tensor(1, cfg.mem_dim).row(0), sat.score({1, 2, 3}, 2),
                    Tensor(3, cfg.kv_in_dim())),
      std::invalid_argument);  // 3 rows given, 2 kept
}

}  // namespace
}  // namespace tgnn::core
