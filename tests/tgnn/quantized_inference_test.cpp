// Engine-level acceptance of the quantized inference path (DESIGN.md "The
// quantized inference path"):
//
//  * an int8 engine tracks the fp32 engine closely over a whole stream —
//    the per-batch embedding error stays within the 8-bit budget even
//    though quantization error feeds back through the persistent memory;
//  * ΔAP between the fp32 and int8 engines on the same stream and the same
//    negative draws is within the paper-style 0.01 budget;
//  * a non-fp32 precision FORCES the batched GNN pipeline, so a per-row-
//    configured int8 engine is bit-identical to a batched one;
//  * bf16 (weights-only storage) is a strictly tighter approximation than
//    int8;
//  * ModelConfig::inference_precision is picked up at engine construction.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/inference.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

data::Dataset tiny_ds(std::size_t edge_dim = 6) {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 600;
  dcfg.edge_dim = edge_dim;
  dcfg.seed = 33;
  return data::make_synthetic(dcfg);
}

ModelConfig small_cfg(AttentionKind attn, std::size_t edge_dim) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = edge_dim;
  cfg.num_neighbors = 5;
  cfg.attention = attn;
  return cfg;
}

/// Max |a - b| over two engines' embeddings streamed in lock-step.
double stream_max_err(const data::Dataset& ds, InferenceEngine& a,
                      InferenceEngine& b, std::size_t batch_size = 100) {
  double max_err = 0.0;
  for (const auto& r :
       ds.graph.fixed_size_batches(0, ds.graph.num_edges(), batch_size)) {
    const auto ra = a.process_batch(r);
    const auto rb = b.process_batch(r);
    EXPECT_EQ(ra.nodes, rb.nodes);
    for (std::size_t i = 0; i < ra.embeddings.size(); ++i)
      max_err = std::max(max_err, std::fabs(double(ra.embeddings[i]) -
                                            double(rb.embeddings[i])));
  }
  return max_err;
}

TEST(QuantizedInference, Int8TracksFp32AcrossTheStream) {
  for (AttentionKind attn :
       {AttentionKind::kVanilla, AttentionKind::kSimplified}) {
    const auto ds = tiny_ds();
    TgnModel model(small_cfg(attn, ds.edge_dim()), 7);
    InferenceEngine fp32(model, ds);
    InferenceEngine int8(model, ds);
    int8.set_precision(kernels::Precision::kInt8);
    EXPECT_EQ(int8.precision(), kernels::Precision::kInt8);
    const double err = stream_max_err(ds, fp32, int8);
    EXPECT_GT(err, 0.0);    // it IS a different numeric path
    EXPECT_LT(err, 0.25);   // but within the 8-bit budget, drift included
  }
}

TEST(QuantizedInference, Bf16IsTighterThanInt8) {
  const auto ds = tiny_ds();
  TgnModel model(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 7);
  InferenceEngine fp32(model, ds);
  InferenceEngine bf16(model, ds);
  bf16.set_precision(kernels::Precision::kBf16);
  const double err = stream_max_err(ds, fp32, bf16);
  EXPECT_LT(err, 0.05);
}

TEST(QuantizedInference, NonFp32ForcesBatchedPipeline) {
  // A per-row-configured int8 engine must silently run the batched GNN
  // pipeline (dynamic activation quantization only amortizes over batched
  // panels) — so it is bit-identical to an explicitly batched int8 engine.
  const auto ds = tiny_ds();
  TgnModel model(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 7);
  InferenceEngine batched(model, ds);
  batched.set_precision(kernels::Precision::kInt8);
  InferenceEngine per_row(model, ds);
  per_row.set_batched_gnn(false);
  per_row.set_precision(kernels::Precision::kInt8);
  for (const auto& r :
       ds.graph.fixed_size_batches(0, ds.graph.num_edges(), 100)) {
    const auto a = batched.process_batch(r);
    const auto b = per_row.process_batch(r);
    ASSERT_EQ(a.nodes, b.nodes);
    for (std::size_t i = 0; i < a.embeddings.size(); ++i)
      ASSERT_EQ(a.embeddings[i], b.embeddings[i]) << "element " << i;
  }
}

TEST(QuantizedInference, ConfigPrecisionPickedUpAtConstruction) {
  const auto ds = tiny_ds();
  auto cfg = small_cfg(AttentionKind::kVanilla, ds.edge_dim());
  cfg.inference_precision = kernels::Precision::kInt8;
  TgnModel model(cfg, 7);
  InferenceEngine engine(model, ds);
  EXPECT_EQ(engine.precision(), kernels::Precision::kInt8);

  // And it really runs the quantized numerics: identical to an engine
  // switched explicitly.
  TgnModel fmodel(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 7);
  InferenceEngine explicit_int8(fmodel, ds);
  explicit_int8.set_precision(kernels::Precision::kInt8);
  const double err = stream_max_err(ds, engine, explicit_int8);
  EXPECT_EQ(err, 0.0);
}

TEST(QuantizedInference, DeltaApWithinBudget) {
  // The acceptance bound the quantized path ships under: ΔAP <= 0.01
  // against fp32 on the same stream with the same negative draws.
  const auto ds = tiny_ds();
  const auto cfg = small_cfg(AttentionKind::kVanilla, ds.edge_dim());
  TgnModel model(cfg, 7);
  Rng drng(3);
  const Decoder dec(cfg, drng);

  InferenceEngine fp32(model, ds);
  fp32.warmup({0, ds.val_end});
  Rng rng_a(5);
  const double ap_fp32 = fp32.evaluate_ap(ds.test_range(), dec, 50, rng_a);

  InferenceEngine int8(model, ds);
  int8.set_precision(kernels::Precision::kInt8);
  int8.warmup({0, ds.val_end});
  Rng rng_b(5);
  const double ap_int8 = int8.evaluate_ap(ds.test_range(), dec, 50, rng_b);

  EXPECT_LE(std::fabs(ap_fp32 - ap_int8), 0.01)
      << "fp32 AP " << ap_fp32 << " vs int8 AP " << ap_int8;
}

}  // namespace
}  // namespace tgnn::core
