// The quantized path's kernel-level contracts (DESIGN.md "The quantized
// inference path"):
//
//  * quantize/dequantize round-trips — saturation clamps to ±127, the
//    all-zero-row scale-0 guard never divides, denormal and huge scales
//    stay finite, and the round-trip error is bounded by half a step;
//  * per-row dynamic scales degrade to the per-tensor scheme exactly when
//    every row shares one absmax (constant-row matrices);
//  * cross-tier bit-identity — the dispatched int8 tier (whatever the host
//    resolves: generic, avx2 maddubs, avx512 VNNI) reproduces the exact
//    scalar integer reference bit-for-bit, both the quantized panel and the
//    GEMM output. The int32 dot is exact and the fp32 epilogue is one
//    shared expression, so this pins ALL tiers to identical numerics;
//  * the k-padding codes (kQuantKPad) are exact no-ops;
//  * the fused int8/bf16 entries track their fp32 counterparts within the
//    quantization error budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "kernels/fused.hpp"
#include "kernels/gemm_dispatch.hpp"
#include "kernels/quant.hpp"
#include "kernels/quant_core.hpp"
#include "nn/gru_cell.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tgnn::kernels {
namespace {

// ---- quantize / dequantize round-trips ------------------------------------

TEST(Quantize, SaturationClampsToPm127) {
  // Values beyond ±127·scale must clip, not wrap.
  const std::vector<float> x = {1e6f, -1e6f, 300.0f, -300.0f, 1.0f, 0.0f};
  std::vector<std::int8_t> q(x.size());
  quantize_row_with_scale(x, /*scale=*/1.0f, q);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 127);
  EXPECT_EQ(q[3], -127);
  EXPECT_EQ(q[4], 1);
  EXPECT_EQ(q[5], 0);
}

TEST(Quantize, AllZeroRowGetsScaleZeroAndZeroCodes) {
  // The scale-0 guard: dequantization multiplies by the scale, so the zero
  // row must round-trip without any division ever happening.
  Tensor x(3, 9);
  for (std::size_t j = 0; j < 9; ++j) {
    x(0, j) = 0.0f;
    x(1, j) = 0.25f * static_cast<float>(j) - 1.0f;
    x(2, j) = 0.0f;
  }
  QuantActs qa;
  quantize_rows_into(x, qa);
  EXPECT_EQ(qa.scale[0], 0.0f);
  EXPECT_EQ(qa.scale[2], 0.0f);
  EXPECT_GT(qa.scale[1], 0.0f);
  for (std::size_t j = 0; j < qa.stride; ++j) {
    EXPECT_EQ(qa.data[0 * qa.stride + j], 0);
    EXPECT_EQ(qa.data[2 * qa.stride + j], 0);
  }
  Tensor back;
  dequantize_into(qa, back);
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_EQ(back(0, j), 0.0f);
    EXPECT_EQ(back(2, j), 0.0f);
    EXPECT_TRUE(std::isfinite(back(1, j)));
  }
}

TEST(Quantize, DenormalAndHugeScalesStayFiniteWhereTheyCan) {
  const float denorm = std::numeric_limits<float>::denorm_min();
  const float huge = std::numeric_limits<float>::max() / 256.0f;
  Tensor x(2, 5);
  for (std::size_t j = 0; j < 5; ++j) {
    x(0, j) = denorm * static_cast<float>(j + 1);  // absmax is denormal
    x(1, j) = (j % 2 ? -1.0f : 1.0f) * huge / static_cast<float>(j + 1);
  }
  QuantActs qa;
  quantize_rows_into(x, qa);
  Tensor back;
  dequantize_into(qa, back);
  // The denormal row's scale (absmax/127) underflows to 0, so the row
  // quantizes to zeros under the scale-0 guard — the information is lost,
  // but nothing is non-finite and the error is below the smallest normal.
  EXPECT_EQ(qa.scale[0], 0.0f);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(back(0, j), 0.0f) << j;
    EXPECT_LT(std::fabs(back(0, j) - x(0, j)),
              std::numeric_limits<float>::min())
        << j;
  }
  // The huge row stays finite with the half-a-step round-trip bound (one
  // ulp of slack for the scale division).
  EXPECT_TRUE(std::isfinite(qa.scale[1]));
  EXPECT_EQ(qa.data[1 * qa.stride + 0], 127);  // absmax element saturates
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_TRUE(std::isfinite(back(1, j))) << j;
    EXPECT_LE(std::fabs(back(1, j) - x(1, j)),
              0.5f * qa.scale[1] * (1.0f + 1e-6f))
        << j;
  }

  // At the absolute float ceiling the scale division can round up, making
  // 127·scale overflow on dequantization — codes still clamp to ±127 (no
  // UB anywhere), which is the guarantee the kernel path needs.
  Tensor ceil_row(1, 2);
  ceil_row(0, 0) = std::numeric_limits<float>::max();
  ceil_row(0, 1) = -std::numeric_limits<float>::max();
  QuantActs qc;
  quantize_rows_into(ceil_row, qc);
  EXPECT_TRUE(std::isfinite(qc.scale[0]));
  EXPECT_EQ(qc.data[0], 127);
  EXPECT_EQ(qc.data[1], -127);
}

TEST(Quantize, RoundTripErrorWithinHalfStep) {
  Rng rng(11);
  const Tensor x = Tensor::randn(7, 53, rng, 2.0f);
  QuantActs qa;
  quantize_rows_into(x, qa);
  Tensor back;
  dequantize_into(qa, back);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      EXPECT_LE(std::fabs(back(i, j) - x(i, j)),
                0.5f * qa.scale[i] * (1.0f + 1e-6f))
          << i << "," << j;
}

TEST(Quantize, PerRowEqualsPerTensorOnConstantAbsmaxRows) {
  // When every row shares one absmax, the per-row dynamic scheme IS the
  // per-tensor scheme: same scale, and — because the weight path and every
  // activation tier round half-to-even — the same codes.
  Rng rng(17);
  Tensor x = Tensor::randn(6, 31, rng, 0.5f);
  for (std::size_t i = 0; i < x.rows(); ++i) x(i, 0) = 3.0f;  // shared absmax
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 1; j < x.cols(); ++j)
      x(i, j) = std::fmin(2.9f, std::fmax(-2.9f, x(i, j)));

  QuantActs qa;
  quantize_rows_into(x, qa);
  QuantWeight qw;
  quantize_weight(x, qw);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(qa.scale[i], qw.scale) << "row " << i;
    for (std::size_t j = 0; j < x.cols(); ++j)
      EXPECT_EQ(qa.data[i * qa.stride + j], qw.data[i * qw.stride + j])
          << i << "," << j;
  }
}

// ---- cross-tier bit-identity ----------------------------------------------

TEST(QuantDispatch, QuantizeMatchesScalarReferenceBitForBit) {
  // The dispatched tier (host's best) against the quant_core scalar rule:
  // scale = absmax/127, q = clamp(rint(x/scale)). Any tier that diverged by
  // one rounding would fail here — which is the whole cross-tier identity
  // argument, since every tier must pass on its own hardware.
  Rng rng(23);
  const std::size_t m = 9, k = 201;  // odd k: vector body + scalar tail
  const Tensor x = Tensor::randn(m, k, rng, 1.5f);
  const auto& tab = detail::active_quant_kernels();

  const std::size_t stride = quant_padded(k);
  std::vector<std::int8_t> q(m * stride, 99), q_ref(m * stride, 99);
  std::vector<float> s(m), s_ref(m);
  tab.quantize(x.data(), m, k, stride, q.data(), s.data());
  detail::quantize_rows_generic(x.data(), m, k, stride, q_ref.data(),
                                s_ref.data());
  for (std::size_t i = 0; i < m; ++i)
    EXPECT_EQ(s[i], s_ref[i]) << "scale row " << i << " on " << tab.name;
  for (std::size_t i = 0; i < m * stride; ++i)
    EXPECT_EQ(q[i], q_ref[i]) << "code " << i << " on " << tab.name;
}

TEST(QuantDispatch, QgemmMatchesExactIntegerReferenceBitForBit) {
  // int32 dots are exact, and the epilogue is the one shared quant_finish
  // expression — so the dispatched GEMM must equal a scalar integer
  // reference EXACTLY, not approximately.
  Rng rng(29);
  const std::size_t m = 13, k = 137, n = 27;  // all off vector boundaries
  const Tensor a = Tensor::randn(m, k, rng, 1.0f);
  const Tensor w = Tensor::randn(n, k, rng, 0.7f);
  const Tensor bias = Tensor::randn(n, 1, rng, 0.3f);

  QuantActs qa;
  quantize_rows_into(a, qa);
  QuantWeight qw;
  quantize_weight(w, qw);
  ASSERT_EQ(qa.stride, qw.stride);

  const auto& tab = detail::active_quant_kernels();
  Tensor c(m, n);
  // k = stride: the padded codes are zero, hence exact no-ops (VNNI's
  // offset-domain correction included) — pinned by this very comparison.
  tab.qgemm(detail::Act::kNone, /*accumulate=*/false, qa.data.data(),
            qa.scale.data(), qw.data.data(), qw.scale, qw.row_sum.data(),
            bias.data(), c.data(), m, qa.stride, n);

  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const std::int32_t idot = detail::qdot_scalar(
          qa.data.data() + i * qa.stride, qw.data.data() + j * qw.stride, k);
      const float ref = detail::quant_finish<detail::Act::kNone>(
          0.0f, idot, qa.scale[i] * qw.scale, bias[j]);
      EXPECT_EQ(c(i, j), ref) << i << "," << j << " on " << tab.name;
    }
}

// ---- fused entries vs fp32 ------------------------------------------------

TEST(QuantFused, QaffineTracksFp32) {
  Rng rng(31);
  const std::size_t m = 16, k = 100, n = 40;
  const Tensor x = Tensor::randn(m, k, rng, 0.5f);
  const Tensor w = Tensor::randn(n, k, rng, 0.3f);
  const Tensor b = Tensor::randn(n, 1, rng, 0.2f);

  Tensor ref;
  affine_into(x, w, b, ref);
  QuantActs qx;
  quantize_rows_into(x, qx);
  QuantWeight qw;
  quantize_weight(w, qw);
  Tensor y;
  qaffine_into(qx, qw, b, y);
  ASSERT_EQ(y.rows(), m);
  ASSERT_EQ(y.cols(), n);
  double max_err = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    max_err = std::max(max_err, std::fabs(double(y[i]) - double(ref[i])));
  // Symmetric 8-bit on unit-scale inputs: well under the fp32 signal.
  EXPECT_LT(max_err, 0.25) << "on " << quant_arch_name();
}

TEST(QuantFused, QgruTracksFp32Gru) {
  Rng rng(37);
  const std::size_t m = 12, in = 57, hid = 24;
  nn::GruCell cell("q", in, hid, rng);
  const Tensor x = Tensor::randn(m, in, rng, 0.5f);
  const Tensor h = Tensor::randn(m, hid, rng, 0.5f);

  GruScratch ws_ref, ws_q;
  Tensor ref, out;
  cell.forward_into(x, h, ws_ref, ref);
  cell.prepare(Precision::kInt8);
  cell.forward_into(x, h, ws_q, out, Precision::kInt8);
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_err = std::max(max_err, std::fabs(double(out[i]) - double(ref[i])));
  // Gates squash through sigmoid/tanh, so the state error stays small.
  EXPECT_LT(max_err, 0.05) << "on " << quant_arch_name();
}

// ---- bf16 -----------------------------------------------------------------

TEST(Bf16, RoundTripIsRNEWithEightMantissaBits) {
  // Values with <= 8 significant mantissa bits are exact.
  for (float v : {0.0f, 1.0f, -2.5f, 0.15625f, 256.0f, -1.984375f})
    EXPECT_EQ(bf16_to_float(bf16_from_float(v)), v) << v;
  // Everything else is within 2^-8 relative (one bf16 ulp).
  Rng rng(41);
  const Tensor x = Tensor::randn(1, 200, rng, 3.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float back = bf16_to_float(bf16_from_float(x[i]));
    EXPECT_LE(std::fabs(back - x[i]), std::fabs(x[i]) * (1.0f / 256.0f))
        << x[i];
  }
}

TEST(Bf16, AffineTracksFp32) {
  Rng rng(43);
  const std::size_t m = 8, k = 73, n = 19;
  const Tensor x = Tensor::randn(m, k, rng, 0.5f);
  const Tensor w = Tensor::randn(n, k, rng, 0.3f);
  const Tensor b = Tensor::randn(n, 1, rng, 0.2f);
  Tensor ref;
  affine_into(x, w, b, ref);
  Bf16Weight bw;
  bf16_from_tensor(w, bw);
  Tensor y;
  bf16_affine_into(x, bw, b, y);
  double max_err = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    max_err = std::max(max_err, std::fabs(double(y[i]) - double(ref[i])));
  EXPECT_LT(max_err, 0.05);
}

}  // namespace
}  // namespace tgnn::kernels
