// Fused-vs-reference parity: the kernel layer may re-associate float sums
// (simd reductions), so every fused op is pinned to its reference op within
// 1e-6 across odd shapes — 1-row inputs, dims that are not a multiple of
// the 4-column register block or an 8-lane simd width, empty inputs — and
// the fused paths are checked to be allocation-free in steady state
// (buffer data pointers stable across calls).
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fused.hpp"
#include "kernels/gemm.hpp"
#include "nn/gru_cell.hpp"
#include "tensor/ops.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/simplified_attention.hpp"
#include "util/rng.hpp"

namespace tgnn {
namespace {

constexpr float kTol = 1e-6f;

/// Raw GEMM outputs grow with the inner dimension, and so does the float
/// reassociation error of the simd reduction — bound it at 1e-6 RELATIVE
/// to the output magnitude (absolute 1e-6 for outputs of order <= 1, which
/// covers every post-activation kernel).
float tol_for(const Tensor& ref) { return kTol * std::max(1.0f, ref.abs_max()); }

struct Shape {
  std::size_t m, k, n;
};

// 1-row, sub-block, non-multiple-of-8, and model-realistic shapes.
const Shape kShapes[] = {{1, 1, 1},    {1, 7, 3},     {1, 100, 100},
                         {3, 13, 5},   {2, 129, 31},  {5, 8, 4},
                         {32, 372, 100}, {17, 101, 33}};

TEST(Kernels, GemmNtMatchesReference) {
  for (const auto& s : kShapes) {
    Rng rng(7);
    const Tensor a = Tensor::randn(s.m, s.k, rng, 0.5f);
    const Tensor b = Tensor::randn(s.n, s.k, rng, 0.5f);
    const Tensor ref = ops::matmul_nt(a, b);
    Tensor c(s.m, s.n);
    kernels::gemm_nt(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    EXPECT_LT(ops::max_abs_diff(ref, c), tol_for(ref))
        << s.m << "x" << s.k << "x" << s.n;

    // Accumulating variant adds on top.
    kernels::gemm_nt(a.data(), b.data(), c.data(), s.m, s.k, s.n,
                     /*accumulate=*/true);
    Tensor ref2 = ref;
    ref2 += ref;
    EXPECT_LT(ops::max_abs_diff(ref2, c), 2 * tol_for(ref));
  }
}

TEST(Kernels, AffineActivationsMatchReference) {
  for (const auto& s : kShapes) {
    Rng rng(11);
    const Tensor x = Tensor::randn(s.m, s.k, rng, 0.5f);
    const Tensor w = Tensor::randn(s.n, s.k, rng, 0.5f);
    const Tensor b = Tensor::randn(s.n, 1, rng, 0.5f);

    const Tensor ref = ops::affine(x, w, b);
    const float tol = tol_for(ref);
    Tensor y;
    kernels::affine_into(x, w, b, y);
    EXPECT_LT(ops::max_abs_diff(ref, y), tol);

    // The pre-activation reassociation error passes through the (1-Lipschitz
    // or gentler) activations, so the same bound applies.
    kernels::affine_sigmoid_into(x, w, b, y);
    EXPECT_LT(ops::max_abs_diff(ops::sigmoid(ref), y), tol);

    kernels::affine_tanh_into(x, w, b, y);
    EXPECT_LT(ops::max_abs_diff(ops::tanh(ref), y), tol);

    kernels::affine_relu_into(x, w, b, y);
    EXPECT_LT(ops::max_abs_diff(ops::relu(ref), y), tol);
  }
}

TEST(Kernels, Affine2SigmoidMatchesTwoAffines) {
  for (const std::size_t hid : {1u, 5u, 31u, 100u}) {
    Rng rng(13);
    const std::size_t m = 3, in = 17;
    const Tensor x = Tensor::randn(m, in, rng, 0.5f);
    const Tensor h = Tensor::randn(m, hid, rng, 0.5f);
    const Tensor wi = Tensor::randn(hid, in, rng, 0.5f);
    const Tensor wh = Tensor::randn(hid, hid, rng, 0.5f);
    const Tensor bi = Tensor::randn(hid, 1, rng, 0.5f);
    const Tensor bh = Tensor::randn(hid, 1, rng, 0.5f);

    Tensor pre = ops::affine(x, wi, bi);
    pre += ops::affine(h, wh, bh);
    const Tensor ref = ops::sigmoid(pre);

    Tensor y;
    kernels::affine2_sigmoid_into(x, wi, bi, h, wh, bh, y);
    EXPECT_LT(ops::max_abs_diff(ref, y), kTol) << "hid=" << hid;
  }
}

TEST(Kernels, AffineRowIntoMatchesReference) {
  Rng rng(17);
  const Tensor x = Tensor::randn(1, 37, rng, 0.5f);
  const Tensor w = Tensor::randn(21, 37, rng, 0.5f);
  const Tensor b = Tensor::randn(21, 1, rng, 0.5f);
  const Tensor ref = ops::affine(x, w, b);
  std::vector<float> out(21);
  kernels::affine_row_into(x.row(0), w, b, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(ref[i], out[i], kTol);
}

TEST(Kernels, WeightedRowsumMatchesLoop) {
  Rng rng(19);
  const std::size_t r = 7, n = 13;
  const Tensor w = Tensor::randn(1, r, rng);
  const Tensor rows = Tensor::randn(r, n, rng);
  std::vector<float> ref(n, 0.0f);
  for (std::size_t j = 0; j < r; ++j)
    for (std::size_t d = 0; d < n; ++d) ref[d] += w[j] * rows(j, d);
  std::vector<float> out(n, -1.0f);
  kernels::weighted_rowsum(w.data(), rows.data(), out.data(), r, n);
  for (std::size_t d = 0; d < n; ++d) EXPECT_NEAR(ref[d], out[d], kTol);
}

TEST(Kernels, GruForwardIntoMatchesReferenceAcrossShapes) {
  // 1-row and odd-dim GRUs: the serving-critical micro-batch shapes.
  struct G {
    std::size_t rows, in, hid;
  };
  for (const auto& g :
       {G{1, 9, 7}, G{1, 472, 100}, G{3, 31, 17}, G{32, 472, 100}}) {
    Rng rng(23);
    nn::GruCell gru("g", g.in, g.hid, rng);
    const Tensor x = Tensor::randn(g.rows, g.in, rng, 0.5f);
    const Tensor h = Tensor::randn(g.rows, g.hid, rng, 0.5f);
    const Tensor ref = gru.forward(x, h);
    kernels::GruScratch ws;
    Tensor out;
    gru.forward_into(x, h, ws, out);
    ASSERT_EQ(out.rows(), ref.rows());
    ASSERT_EQ(out.cols(), ref.cols());
    EXPECT_LT(ops::max_abs_diff(ref, out), kTol)
        << g.rows << "x" << g.in << "x" << g.hid;
  }
}

TEST(Kernels, GruForwardIntoIsAllocationFreeInSteadyState) {
  Rng rng(29);
  nn::GruCell gru("g", 24, 16, rng);
  const Tensor x = Tensor::randn(8, 24, rng);
  const Tensor h = Tensor::randn(8, 16, rng);
  kernels::GruScratch ws;
  Tensor out;
  gru.forward_into(x, h, ws, out);
  const float* pout = out.data();
  const float* pr = ws.r.data();
  for (int iter = 0; iter < 3; ++iter) gru.forward_into(x, h, ws, out);
  EXPECT_EQ(out.data(), pout);
  EXPECT_EQ(ws.r.data(), pr);
}

core::ModelConfig small_cfg() {
  core::ModelConfig cfg;
  cfg.mem_dim = 9;       // odd on purpose
  cfg.time_dim = 5;
  cfg.emb_dim = 7;
  cfg.edge_dim = 3;
  cfg.num_neighbors = 5;
  return cfg;
}

TEST(Kernels, VanillaAttentionForwardIntoMatchesForward) {
  const auto cfg = small_cfg();
  Rng rng(31);
  core::VanillaAttention att(cfg, rng);
  core::VanillaAttention::InferScratch ws;
  for (const std::size_t n : {0u, 1u, 3u, 5u}) {
    core::AttnNodeInput in;
    in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng, 0.5f);
    in.kv_in = Tensor::randn(n, cfg.kv_in_dim(), rng, 0.5f);
    const Tensor f = Tensor::randn(1, cfg.mem_dim, rng, 0.5f);
    const Tensor ref = att.forward(f.row(0), in);
    std::vector<float> out(cfg.emb_dim);
    att.forward_into(f.row(0), in, ws, out);
    for (std::size_t d = 0; d < out.size(); ++d)
      EXPECT_NEAR(ref(0, d), out[d], kTol) << "n=" << n;
  }
}

TEST(Kernels, SimplifiedAttentionAggregateIntoMatchesAggregate) {
  const auto cfg = small_cfg();
  Rng rng(37);
  core::SimplifiedAttention sat(cfg, rng);
  core::SimplifiedAttention::InferScratch ws;
  core::SimplifiedAttention::ScoreScratch sws;
  core::SimplifiedAttention::Scores scores;
  for (const std::size_t valid : {0u, 1u, 3u, 5u}) {
    std::vector<double> dts(valid);
    for (std::size_t j = 0; j < valid; ++j)
      dts[j] = 3.0 * static_cast<double>(j + 1);
    sat.score_into(dts, /*budget=*/3, sws, scores);
    const auto ref_scores = sat.score(dts, 3);
    ASSERT_EQ(scores.keep, ref_scores.keep);
    ASSERT_EQ(scores.logits, ref_scores.logits);

    const Tensor v_in =
        Tensor::randn(scores.keep.size(), cfg.kv_in_dim(), rng, 0.5f);
    const Tensor f = Tensor::randn(1, cfg.mem_dim, rng, 0.5f);
    const Tensor ref = sat.aggregate(f.row(0), ref_scores, v_in);
    std::vector<float> out(cfg.emb_dim);
    sat.aggregate_into(f.row(0), scores, v_in, ws, out);
    for (std::size_t d = 0; d < out.size(); ++d)
      EXPECT_NEAR(ref(0, d), out[d], kTol) << "valid=" << valid;
  }
}

TEST(Kernels, DecoderScoreWithMatchesScore) {
  const auto cfg = small_cfg();
  Rng rng(41);
  core::Decoder dec(cfg, rng);
  core::Decoder::InferScratch ws;
  for (int it = 0; it < 4; ++it) {
    const Tensor hu = Tensor::randn(1, cfg.emb_dim, rng, 0.5f);
    const Tensor hv = Tensor::randn(1, cfg.emb_dim, rng, 0.5f);
    const double ref = dec.score(hu.row(0), hv.row(0));
    const double got = dec.score_with(ws, hu.row(0), hv.row(0));
    EXPECT_NEAR(ref, got, kTol);
  }
}

TEST(Kernels, DecoderForwardIntoMatchesForward) {
  const auto cfg = small_cfg();
  Rng rng(43);
  core::Decoder dec(cfg, rng);
  core::Decoder::InferScratch ws;
  const Tensor x = Tensor::randn(6, 3 * cfg.emb_dim, rng, 0.5f);
  const Tensor ref = dec.forward(x);
  const Tensor& got = dec.forward_into(x, ws);
  EXPECT_LT(ops::max_abs_diff(ref, got), kTol);
}

}  // namespace
}  // namespace tgnn
