// The batched pipeline's kernel-level contracts:
//
//  * m-invariance — one m-row GEMM call is BIT-identical to m single-row
//    calls (the dispatched micro-kernels accumulate every output element
//    in a source-fixed lane order, so the row-blocking shape never shows);
//  * the segment kernels are exactly the per-row attention loops run over
//    packed CSR segments, including empty segments (zero-degree vertices)
//    and the softmax uniform fallback;
//  * the batched attention entry points equal their per-row counterparts
//    bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "kernels/fused.hpp"
#include "nn/gru_cell.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gemm_dispatch.hpp"
#include "kernels/segment.hpp"
#include "tensor/ops.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/simplified_attention.hpp"
#include "util/rng.hpp"

namespace tgnn {
namespace {

TEST(BatchedKernels, GemmNtBatchedBitIdenticalToPerRow) {
  // Odd shapes on purpose: row tails (m % 4), column tails (n % 4), inner
  // tails (k % 8) all cross the micro-kernel boundaries.
  struct Shape {
    std::size_t m, k, n;
  };
  for (const Shape& s : {Shape{2, 7, 3}, Shape{5, 100, 100}, Shape{16, 472, 100},
                         Shape{17, 129, 31}, Shape{33, 64, 5}}) {
    Rng rng(3);
    const Tensor a = Tensor::randn(s.m, s.k, rng, 0.5f);
    const Tensor b = Tensor::randn(s.n, s.k, rng, 0.5f);
    Tensor batched(s.m, s.n), per_row(s.m, s.n);
    kernels::gemm_nt(a.data(), b.data(), batched.data(), s.m, s.k, s.n);
    for (std::size_t i = 0; i < s.m; ++i)
      kernels::gemm_nt(a.row(i).data(), b.data(), per_row.row(i).data(), 1,
                       s.k, s.n);
    for (std::size_t i = 0; i < batched.size(); ++i)
      EXPECT_EQ(batched[i], per_row[i])
          << "element " << i << " of " << s.m << "x" << s.k << "x" << s.n
          << " on " << kernels::simd_arch_name();
  }
}

TEST(BatchedKernels, AffineActBatchedBitIdenticalToPerRow) {
  Rng rng(5);
  const std::size_t m = 19, k = 37, n = 23;
  const Tensor x = Tensor::randn(m, k, rng, 0.5f);
  const Tensor w = Tensor::randn(n, k, rng, 0.5f);
  const Tensor b = Tensor::randn(n, 1, rng, 0.5f);
  Tensor batched, row_out;
  kernels::affine_sigmoid_into(x, w, b, batched);
  Tensor xi(1, k);
  for (std::size_t i = 0; i < m; ++i) {
    std::copy(x.row(i).begin(), x.row(i).end(), xi.row(0).begin());
    kernels::affine_sigmoid_into(xi, w, b, row_out);
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(batched(i, j), row_out(0, j)) << i << "," << j;
  }
}

TEST(BatchedKernels, GruForwardBatchedBitIdenticalToPerRow) {
  Rng rng(7);
  nn::GruCell gru("g", 29, 13, rng);
  const std::size_t m = 11;
  const Tensor x = Tensor::randn(m, 29, rng, 0.5f);
  const Tensor h = Tensor::randn(m, 13, rng, 0.5f);
  kernels::GruScratch ws;
  Tensor batched;
  gru.forward_into(x, h, ws, batched);

  Tensor xi(1, 29), hi(1, 13), row_out;
  kernels::GruScratch ws1;
  for (std::size_t i = 0; i < m; ++i) {
    std::copy(x.row(i).begin(), x.row(i).end(), xi.row(0).begin());
    std::copy(h.row(i).begin(), h.row(i).end(), hi.row(0).begin());
    gru.forward_into(xi, hi, ws1, row_out);
    for (std::size_t d = 0; d < 13; ++d)
      EXPECT_EQ(batched(i, d), row_out(0, d)) << i << "," << d;
  }
}

TEST(BatchedKernels, SegmentKernelsMatchPerSegmentLoops) {
  Rng rng(11);
  const std::size_t emb = 9;
  // Ragged segments including empties at the front, middle, and back.
  const std::vector<std::size_t> seg = {0, 0, 3, 3, 7, 8, 8};
  const std::size_t n_segs = seg.size() - 1, total = seg.back();
  const Tensor q = Tensor::randn(n_segs, emb, rng, 0.5f);
  const Tensor k = Tensor::randn(total, emb, rng, 0.5f);
  const Tensor v = Tensor::randn(total, emb, rng, 0.5f);

  std::vector<float> alpha(total), ref(total);
  kernels::segment_attention_logits(q.data(), k.data(), seg, emb,
                                    alpha.data());
  for (std::size_t s = 0; s < n_segs; ++s) {
    const std::size_t len = seg[s + 1] - seg[s];
    if (len == 0) continue;
    kernels::gemm_nt(q.row(s).data(), k.row(seg[s]).data(), ref.data() + seg[s],
                     1, emb, len);
    const float scale = 1.0f / std::sqrt(static_cast<float>(len));
    for (std::size_t r = seg[s]; r < seg[s + 1]; ++r) ref[r] *= scale;
  }
  EXPECT_EQ(alpha, ref);

  kernels::segment_softmax(alpha.data(), seg);
  for (std::size_t s = 0; s < n_segs; ++s) {
    const std::size_t len = seg[s + 1] - seg[s];
    if (len == 0) continue;
    ops::softmax_span({ref.data() + seg[s], len});
  }
  EXPECT_EQ(alpha, ref);

  const std::size_t stride = emb + 4;
  std::vector<float> out(n_segs * stride, -1.0f), out_ref(n_segs * stride,
                                                          -1.0f);
  kernels::segment_weighted_rowsum(alpha.data(), v.data(), seg, emb,
                                   out.data(), stride);
  for (std::size_t s = 0; s < n_segs; ++s)
    kernels::weighted_rowsum(ref.data() + seg[s], v.row(seg[s]).data(),
                             out_ref.data() + s * stride,
                             seg[s + 1] - seg[s], emb);
  EXPECT_EQ(out, out_ref);
  // Empty segments zero-fill exactly emb columns; the stride padding stays.
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[emb], -1.0f);
}

TEST(BatchedKernels, SegmentSoftmaxUniformFallbackMatchesSoftmaxSpan) {
  // An all--inf segment (every slot masked) must fall back to the uniform
  // distribution exactly as ops::softmax_span does, independently per
  // segment.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> v = {-inf, -inf, 1.0f, 2.0f, -inf};
  const std::vector<std::size_t> seg = {0, 2, 4, 5};
  std::vector<float> ref = v;
  kernels::segment_softmax(v.data(), seg);
  ops::softmax_span({ref.data() + 0, 2});
  ops::softmax_span({ref.data() + 2, 2});
  ops::softmax_span({ref.data() + 4, 1});
  EXPECT_EQ(v, ref);
  EXPECT_FLOAT_EQ(v[0], 0.5f);  // uniform fallback over the masked segment
  EXPECT_FLOAT_EQ(v[1], 0.5f);
}

core::ModelConfig small_cfg() {
  core::ModelConfig cfg;
  cfg.mem_dim = 9;  // odd on purpose
  cfg.time_dim = 5;
  cfg.emb_dim = 7;
  cfg.edge_dim = 3;
  cfg.num_neighbors = 5;
  return cfg;
}

TEST(BatchedKernels, VanillaForwardBatchBitIdenticalToPerRow) {
  const auto cfg = small_cfg();
  Rng rng(13);
  core::VanillaAttention att(cfg, rng);

  // 5 nodes with ragged degrees incl. two zero-degree ones.
  const std::vector<std::size_t> degrees = {0, 3, 5, 0, 1};
  const std::size_t n_nodes = degrees.size();
  std::vector<std::size_t> seg(n_nodes + 1, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) seg[i + 1] = seg[i] + degrees[i];
  const Tensor f_self = Tensor::randn(n_nodes, cfg.mem_dim, rng, 0.5f);
  const Tensor q_in = Tensor::randn(n_nodes, cfg.q_in_dim(), rng, 0.5f);
  const Tensor kv_in = Tensor::randn(seg.back(), cfg.kv_in_dim(), rng, 0.5f);

  core::VanillaAttention::BatchScratch bs;
  Tensor batched(n_nodes, cfg.emb_dim);
  att.forward_batch_into(f_self, q_in, kv_in, seg, bs, batched);

  core::VanillaAttention::InferScratch ws;
  core::AttnNodeInput in;
  std::vector<float> row(cfg.emb_dim);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    in.q_in.resize(1, cfg.q_in_dim());
    std::copy(q_in.row(i).begin(), q_in.row(i).end(), in.q_in.row(0).begin());
    in.kv_in.resize(degrees[i], cfg.kv_in_dim());
    for (std::size_t j = 0; j < degrees[i]; ++j)
      std::copy(kv_in.row(seg[i] + j).begin(), kv_in.row(seg[i] + j).end(),
                in.kv_in.row(j).begin());
    att.forward_into(f_self.row(i), in, ws, row);
    for (std::size_t d = 0; d < cfg.emb_dim; ++d)
      EXPECT_EQ(batched(i, d), row[d]) << "node " << i << " dim " << d;
  }
}

TEST(BatchedKernels, SimplifiedAggregateBatchBitIdenticalToPerRow) {
  const auto cfg = small_cfg();
  Rng rng(17);
  core::SimplifiedAttention sat(cfg, rng);

  // Per-node dt lists of ragged validity (incl. a zero-degree node), scored
  // with a pruning budget so kept < valid on the full rows.
  const std::vector<std::vector<double>> dts = {
      {3.0, 6.0, 9.0}, {}, {2.0, 4.0, 6.0, 8.0, 10.0}, {5.0}};
  const std::size_t n_nodes = dts.size();
  std::vector<core::SimplifiedAttention::Scores> scores(n_nodes);
  std::vector<std::size_t> seg(n_nodes + 1, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    scores[i] = sat.score(dts[i], /*budget=*/3);
    seg[i + 1] = seg[i] + scores[i].keep.size();
  }
  const Tensor f_self = Tensor::randn(n_nodes, cfg.mem_dim, rng, 0.5f);
  const Tensor v_in = Tensor::randn(seg.back(), cfg.kv_in_dim(), rng, 0.5f);
  std::vector<float> logits(seg.back());
  for (std::size_t i = 0; i < n_nodes; ++i)
    for (std::size_t idx = 0; idx < scores[i].keep.size(); ++idx)
      logits[seg[i] + idx] = scores[i].logits[scores[i].keep[idx]];

  core::SimplifiedAttention::BatchScratch bs;
  Tensor batched(n_nodes, cfg.emb_dim);
  sat.aggregate_batch_into(f_self, logits, v_in, seg, bs, batched);

  core::SimplifiedAttention::InferScratch ws;
  Tensor v_node;
  std::vector<float> row(cfg.emb_dim);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const std::size_t kept = scores[i].keep.size();
    v_node.resize(kept, cfg.kv_in_dim());
    for (std::size_t idx = 0; idx < kept; ++idx)
      std::copy(v_in.row(seg[i] + idx).begin(), v_in.row(seg[i] + idx).end(),
                v_node.row(idx).begin());
    sat.aggregate_into(f_self.row(i), scores[i], v_node, ws, row);
    for (std::size_t d = 0; d < cfg.emb_dim; ++d)
      EXPECT_EQ(batched(i, d), row[d]) << "node " << i << " dim " << d;
  }
}

}  // namespace
}  // namespace tgnn
