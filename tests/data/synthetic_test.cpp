#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tgnn/inference.hpp"

namespace tgnn::data {
namespace {

TEST(Synthetic, DeterministicForSameSeed) {
  const auto a = wikipedia_like(0.05, 42);
  const auto b = wikipedia_like(0.05, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.graph.edge(i).src, b.graph.edge(i).src);
    EXPECT_DOUBLE_EQ(a.graph.edge(i).ts, b.graph.edge(i).ts);
  }
  EXPECT_EQ(a.edge_features(0, 0), b.edge_features(0, 0));
}

TEST(Synthetic, SeedChangesStream) {
  const auto a = wikipedia_like(0.05, 1);
  const auto b = wikipedia_like(0.05, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_edges() && !any_diff; ++i)
    any_diff = a.graph.edge(i).src != b.graph.edge(i).src;
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, PaperDimensions) {
  const auto wiki = wikipedia_like(0.02);
  EXPECT_EQ(wiki.edge_dim(), 172u);
  EXPECT_EQ(wiki.node_dim(), 0u);
  const auto gdelt = gdelt_like(0.02);
  EXPECT_EQ(gdelt.edge_dim(), 0u);
  EXPECT_EQ(gdelt.node_dim(), 200u);
  EXPECT_EQ(gdelt.node_features.rows(), gdelt.num_nodes());
}

TEST(Synthetic, ChronologicalAndBipartite) {
  const auto ds = reddit_like(0.05);
  const graph::NodeId n_users = 2000;
  for (std::size_t i = 0; i < ds.num_edges(); ++i) {
    const auto& e = ds.graph.edge(i);
    if (i > 0) EXPECT_GE(e.ts, ds.graph.edge(i - 1).ts);
    EXPECT_LT(e.src, n_users);   // src is a user
    EXPECT_GE(e.dst, n_users);   // dst is an item
  }
}

TEST(Synthetic, SplitIs70_15_15) {
  const auto ds = wikipedia_like(0.1);
  EXPECT_NEAR(static_cast<double>(ds.train_end) / ds.num_edges(), 0.70, 0.01);
  EXPECT_NEAR(static_cast<double>(ds.val_end) / ds.num_edges(), 0.85, 0.01);
  EXPECT_EQ(ds.test_range().end, ds.num_edges());
}

TEST(Synthetic, InterEventTimesArePowerLawShaped) {
  // Fig. 1 property: the dt distribution has most mass near zero and a heavy
  // tail — mean >> median.
  const auto ds = wikipedia_like(0.2);
  auto dts = core::collect_dt_samples(ds, {0, ds.num_edges()});
  ASSERT_GT(dts.size(), 100u);
  std::sort(dts.begin(), dts.end());
  const double median = dts[dts.size() / 2];
  double mean = 0.0;
  for (double d : dts) mean += d / static_cast<double>(dts.size());
  EXPECT_GT(mean, 2.0 * median);
}

TEST(Synthetic, RepeatStructureExists) {
  // JODIE-style revisit behaviour: a large fraction of edges repeat a
  // previously seen (user, item) pair — the signal link prediction learns.
  const auto st = compute_stats(wikipedia_like(0.2));
  EXPECT_GT(st.repeat_fraction, 0.4);
  EXPECT_LT(st.repeat_fraction, 0.99);
}

TEST(Synthetic, ByNameLookup) {
  EXPECT_EQ(by_name("wikipedia", 0.02).name, "wikipedia");
  EXPECT_EQ(by_name("reddit", 0.02).name, "reddit");
  EXPECT_EQ(by_name("gdelt", 0.02).name, "gdelt");
  EXPECT_THROW(by_name("imagenet"), std::invalid_argument);
}

TEST(Synthetic, RejectsEmptyConfig) {
  SyntheticConfig cfg;
  cfg.num_edges = 0;
  EXPECT_THROW(make_synthetic(cfg), std::invalid_argument);
}

TEST(Synthetic, StatsAreConsistent) {
  const auto ds = wikipedia_like(0.05);
  const auto st = compute_stats(ds);
  EXPECT_EQ(st.num_edges, ds.num_edges());
  EXPECT_GT(st.span_seconds, 0.0);
  EXPECT_NEAR(st.mean_degree,
              2.0 * static_cast<double>(st.num_edges) / st.num_nodes, 1e-9);
}

}  // namespace
}  // namespace tgnn::data
