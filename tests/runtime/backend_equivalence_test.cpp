// The acceptance property of the unified runtime: every engine-backed
// backend produces bit-identical functional outputs for the same model and
// stream — the paper's "same accuracy on every platform" claim, §VI-B.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 500;
  dcfg.edge_dim = 6;
  dcfg.seed = 21;
  return data::make_synthetic(dcfg);
}

core::TgnModel sat_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.prune_budget = 3;
  cfg.attention = core::AttentionKind::kSimplified;
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  cfg.lut_bins = 16;
  core::TgnModel model(cfg, 1);
  model.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  return model;
}

TEST(BackendEquivalence, CpuCpuMtShardedFpgaBitIdentical) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);

  BackendOptions mt;
  mt.threads = 2;
  BackendOptions sh;
  sh.threads = 2;
  sh.shards = 4;
  auto cpu = make_backend("cpu", model, ds);
  auto cpu_mt = make_backend("cpu-mt", model, ds, mt);
  auto sharded = make_backend("sharded-cpu", model, ds, sh);
  auto fpga = make_backend("fpga", model, ds);

  for (const auto& r : ds.graph.fixed_size_batches(0, 400, 80)) {
    const auto a = cpu->process_batch(r);
    const auto b = cpu_mt->process_batch(r);
    const auto s = sharded->process_batch(r);
    const auto c = fpga->process_batch(r);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes);
    ASSERT_EQ(a.functional.nodes, s.functional.nodes);
    ASSERT_EQ(a.functional.nodes, c.functional.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                b.functional.embeddings),
              0.0f);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                s.functional.embeddings),
              0.0f);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                c.functional.embeddings),
              0.0f);
  }
}

TEST(BackendEquivalence, VanillaAttentionBitIdenticalAcrossCpuBackends) {
  // The fused kernel layer must stay thread-count invariant on the vanilla
  // attention path too (the simplified path is covered above): per-row simd
  // accumulation order never depends on the OpenMP team size.
  const auto ds = tiny_ds();
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.attention = core::AttentionKind::kVanilla;
  const core::TgnModel model(cfg, 3);

  BackendOptions mt;
  mt.threads = 3;
  BackendOptions sh;
  sh.threads = 2;
  sh.shards = 4;
  auto cpu = make_backend("cpu", model, ds);
  auto cpu_mt = make_backend("cpu-mt", model, ds, mt);
  auto sharded = make_backend("sharded-cpu", model, ds, sh);

  for (const auto& r : ds.graph.fixed_size_batches(0, 400, 80)) {
    const auto a = cpu->process_batch(r);
    const auto b = cpu_mt->process_batch(r);
    const auto s = sharded->process_batch(r);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes);
    ASSERT_EQ(a.functional.nodes, s.functional.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                b.functional.embeddings),
              0.0f);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                s.functional.embeddings),
              0.0f);
  }
}

TEST(BackendEquivalence, ShardedDeterministicServingBitIdenticalToCpu) {
  // The tentpole acceptance property: the sharded backend driven by the
  // multi-worker conflict-aware scheduler in deterministic mode leaves
  // exactly the state the serial cpu backend leaves.
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  BackendOptions sh;
  sh.threads = 3;
  sh.shards = 8;
  auto sharded = make_backend("sharded-cpu", model, ds, sh);
  auto cpu = make_backend("cpu", model, ds);

  {
    ServingOptions opts;
    opts.max_batch = 50;
    opts.max_wait_s = 10.0;  // cap-driven batching: deterministic boundaries
    opts.workers = 3;
    opts.deterministic = true;
    ServingEngine server(*sharded, opts);
    for (std::size_t i = 0; i < 400; ++i) server.submit(i);
    server.drain();
    for (const auto& b : server.batch_log()) ASSERT_EQ(b.size(), 50u);
  }
  run_stream(*cpu, {0, 400}, 50);

  const graph::BatchRange next{400, 450};
  const auto a = sharded->process_batch(next);
  const auto b = cpu->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f);
}

TEST(BackendEquivalence, GpuSimFunctionalMatchesCpu) {
  // The GPU model substitutes timing, never numerics.
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  auto cpu = make_backend("cpu", model, ds);
  auto gpu = make_backend("gpu-sim", model, ds);
  for (const auto& r : ds.graph.fixed_size_batches(0, 300, 60)) {
    const auto a = cpu->process_batch(r);
    const auto g = gpu->process_batch(r);
    ASSERT_EQ(a.functional.nodes, g.functional.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                g.functional.embeddings),
              0.0f);
  }
}

TEST(BackendEquivalence, WarmupMatchesProcessedStream) {
  // fast_forward + one measured batch == processing everything: the shared
  // warmup helper leaves identical persistent state on every backend.
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  for (const auto* key : {"cpu", "sharded-cpu", "fpga"}) {
    auto warmed = make_backend(key, model, ds);
    fast_forward(*warmed, 300);
    auto streamed = make_backend(key, model, ds);
    for (const auto& r : ds.graph.fixed_size_batches(0, 300, 500))
      streamed->process_batch(r);

    const graph::BatchRange next{300, 360};
    const auto a = warmed->process_batch(next);
    const auto b = streamed->process_batch(next);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes) << key;
    for (std::size_t i = 0; i < a.functional.embeddings.size(); ++i)
      ASSERT_NEAR(a.functional.embeddings[i], b.functional.embeddings[i],
                  1e-6f)
          << key;
  }
}

TEST(BackendEquivalence, ExtraNodesEmbeddedOnEveryBackend) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  const std::vector<graph::NodeId> extras = {0, 1, 2};
  for (const auto& key : backend_keys()) {
    auto b = make_backend(key, model, ds);
    const auto out = b->process_batch({0, 50}, extras);
    for (graph::NodeId v : extras)
      EXPECT_TRUE(out.functional.index.count(v)) << key;
  }
}

}  // namespace
}  // namespace tgnn::runtime
