// Checkpoint/restore of a serving engine (ISSUE 9 tentpole b): snapshot
// the backend's runtime state plus the stream cursor, kill the engine,
// restore into a fresh backend, and continue — the survivor must be
// bit-identical to an engine that never died, on every engine-backed
// platform and with the vertex state spilled out-of-core.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "data/synthetic.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::TgnModel tiny_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 1);
}

ServingOptions deterministic_opts() {
  ServingOptions opts;
  opts.max_batch = 50;
  opts.max_wait_s = 10.0;  // batches split deterministically at the cap
  return opts;
}

std::string ckpt_path(const std::string& tag) {
  return ::testing::TempDir() + "tgnn_ckpt_" + tag + ".tgns";
}

/// Serve 150 requests, checkpoint, keep serving to 200 on the live
/// backend; restore the checkpoint into a fresh backend and serve the
/// same tail there. A held-out probe batch must then produce
/// bit-identical embeddings on both — state AND cursor round-tripped.
void expect_kill_and_restore_bit_identical(const std::string& key,
                                           const std::string& tag,
                                           BackendOptions bopts = {}) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  const std::string path = ckpt_path(tag);

  auto live = make_backend(key, model, ds, bopts);
  std::uint64_t cursor = 0;
  {
    ServingEngine server(*live, deterministic_opts());
    for (std::size_t i = 0; i < 150; ++i) server.submit(i);
    cursor = server.checkpoint(path);
    EXPECT_EQ(cursor, 150u) << key;
    // The engine that never died serves the tail...
    for (std::size_t i = cursor; i < 200; ++i) server.submit(i);
    server.drain();
  }

  // ...and the "killed" deployment comes back on a FRESH backend: restore
  // the snapshot, then resume submitting exactly at the returned cursor.
  auto revived = make_backend(key, model, ds, bopts);
  const std::uint64_t resumed = restore_backend(*revived, path);
  EXPECT_EQ(resumed, cursor) << key;
  {
    ServingEngine server(*revived, deterministic_opts());
    for (std::size_t i = resumed; i < 200; ++i) server.submit(i);
    server.drain();
  }

  const graph::BatchRange probe{200, 260};
  const auto a = live->process_batch(probe);
  const auto b = revived->process_batch(probe);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes) << key;
  EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                              b.functional.embeddings),
            0.0f)
      << key;
}

TEST(Checkpoint, KillAndRestoreBitIdenticalCpu) {
  expect_kill_and_restore_bit_identical("cpu", "cpu");
}

TEST(Checkpoint, KillAndRestoreBitIdenticalCpuMt) {
  BackendOptions bopts;
  bopts.threads = 2;
  expect_kill_and_restore_bit_identical("cpu-mt", "cpu_mt", bopts);
}

TEST(Checkpoint, KillAndRestoreBitIdenticalShardedCpu) {
  BackendOptions bopts;
  bopts.threads = 2;
  expect_kill_and_restore_bit_identical("sharded-cpu", "sharded", bopts);
}

TEST(Checkpoint, KillAndRestoreBitIdenticalOutOfCore) {
  // A ~10% resident budget forces most vertex rows through the spill
  // file; the snapshot must capture spilled pages too, not just what
  // happens to be in DRAM.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  BackendOptions bopts;
  bopts.memory_budget =
      core::RuntimeState::state_bytes(ds.graph.num_nodes(), model.config()) /
      10;
  expect_kill_and_restore_bit_identical("cpu", "oocore", bopts);
}

TEST(Checkpoint, FreshEngineCheckpointsCursorZero) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  const std::string path = ckpt_path("fresh");
  ServingEngine server(*backend);
  EXPECT_EQ(server.checkpoint(path), 0u);

  auto revived = make_backend("cpu", model, ds);
  EXPECT_EQ(restore_backend(*revived, path), 0u);
}

TEST(Checkpoint, RestoreRejectsMismatchedState) {
  // A checkpoint from one model shape must not load into another — a
  // silent shape mismatch would corrupt every row it touches.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  const std::string path = ckpt_path("mismatch");
  {
    ServingEngine server(*backend, deterministic_opts());
    for (std::size_t i = 0; i < 100; ++i) server.submit(i);
    server.checkpoint(path);
  }

  core::ModelConfig cfg = model.config();
  cfg.mem_dim = 16;  // different memory width
  const core::TgnModel other(cfg, 1);
  auto victim = make_backend("cpu", other, ds);
  EXPECT_THROW(restore_backend(*victim, path), std::runtime_error);
}

TEST(Checkpoint, RestoreRejectsMissingFile) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  EXPECT_THROW(restore_backend(*backend, ckpt_path("never_written_xyz")),
               std::runtime_error);
}

}  // namespace
}  // namespace tgnn::runtime
