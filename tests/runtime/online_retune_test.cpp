// Online auto-tuning (ServingOptions::autotune_online):
//  * the engine actually retunes itself off the live profile when batch
//    sizes vary enough to calibrate the cost model (bursty traffic),
//  * the no-flip-flop contract — tuning events are spaced by the
//    hysteresis windows (retune_interval between resizes, two intervals
//    before a direction reversal, degrade_patience between precision
//    steps) and never two knobs at one quiescent point — across serial,
//    multi-worker, and pipelined scheduling, also under sustained
//    overload with the degradation ladder active,
//  * deterministic-mode bit-identity: resizing only moves BATCH BOUNDARIES;
//    a serial replay of the exact batch_log() reproduces the final vertex
//    state bit for bit,
//  * option validation.
// The concurrency-heavy cases double as TSan/ASan CI load.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset retune_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 400;
  dcfg.num_items = 300;
  dcfg.num_edges = 3000;
  dcfg.edge_dim = 6;
  dcfg.seed = 47;
  return data::make_synthetic(dcfg);
}

core::TgnModel retune_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 19);
}

/// Submit [0, n) in alternating small/large bursts with a pause between
/// bursts longer than the flush deadline: batches form at RAGGED sizes
/// (max_wait flushes), which is the batch-size variance the live affine
/// calibration needs. Closed-loop saturation would form every batch at
/// the cap and give the fit nothing.
void submit_bursty(ServingEngine& server, std::size_t n, double wait_s) {
  std::size_t i = 0;
  bool small = true;
  while (i < n) {
    const std::size_t burst = small ? 5 : 19;
    for (std::size_t j = 0; j < burst && i < n; ++j) server.submit(i++);
    small = !small;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(3.0 * wait_s));
  }
  server.drain();
}

ServingOptions retune_opts() {
  ServingOptions opts;
  opts.max_batch = 8;
  opts.max_wait_s = 2e-4;
  opts.autotune_online = true;
  opts.retune_interval = 8;
  opts.retune_margin = 1.05;
  opts.retune_min_batch = 8;
  opts.retune_max_batch = 256;
  return opts;
}

/// The no-flip-flop contract over a tuning journal: resizes spaced by at
/// least retune_interval batches, direction reversals by two intervals,
/// precision steps by degrade_patience, and no two events at one point.
void expect_hysteresis(const std::vector<TuningEvent>& log,
                       const ServingOptions& opts) {
  const TuningEvent* prev_batch_ev = nullptr;
  const TuningEvent* prev_prec_ev = nullptr;
  std::size_t prev_value = opts.max_batch;
  int prev_dir = 0;
  std::size_t prev_dir_at = 0;
  for (const auto& ev : log) {
    if (ev.kind == TuningEvent::Kind::kMaxBatch) {
      EXPECT_GE(ev.value, opts.retune_min_batch);
      EXPECT_LE(ev.value, opts.retune_max_batch);
      EXPECT_NE(ev.value, prev_value);  // a no-op flip is a bug
      if (prev_batch_ev != nullptr)
        EXPECT_GE(ev.at_batch - prev_batch_ev->at_batch,
                  opts.retune_interval);
      const int dir = ev.value > prev_value ? 1 : -1;
      if (dir == -prev_dir)
        EXPECT_GE(ev.at_batch - prev_dir_at, 2 * opts.retune_interval);
      prev_dir = dir;
      prev_dir_at = ev.at_batch;
      prev_value = ev.value;
      prev_batch_ev = &ev;
    } else {
      if (prev_prec_ev != nullptr)
        EXPECT_GE(ev.at_batch - prev_prec_ev->at_batch,
                  opts.degrade_patience);
      prev_prec_ev = &ev;
    }
    // One knob per quiescent point: a precision flip and a resize can
    // never share a batch formation.
    if (prev_batch_ev != nullptr && prev_prec_ev != nullptr)
      EXPECT_NE(prev_batch_ev->at_batch, prev_prec_ev->at_batch);
  }
}

TEST(OnlineRetune, BurstyTrafficCalibratesAndResizes) {
  // Tiny batches at a tiny model: per-batch fixed cost dominates, so once
  // ragged batch sizes let the affine fit see it, the model must predict
  // larger batches faster and the engine must flip max_batch upward.
  const auto ds = retune_ds();
  const auto model = retune_model(ds);
  auto backend = make_backend("cpu", model, ds);
  const auto opts = retune_opts();
  ServingEngine server(*backend, opts);
  submit_bursty(server, 2000, opts.max_wait_s);

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 2000u);
  EXPECT_GE(s.retune_steps, 1u);
  EXPECT_GT(s.max_batch, opts.max_batch);  // moved up, and stats track it
  EXPECT_GE(s.max_wait_s, opts.max_wait_s / 8.0);
  EXPECT_LE(s.max_wait_s, opts.max_wait_s * 8.0);
  bool saw_resize = false;
  for (const auto& ev : server.tuning_log())
    saw_resize |= ev.kind == TuningEvent::Kind::kMaxBatch;
  EXPECT_TRUE(saw_resize);
  expect_hysteresis(server.tuning_log(), opts);
}

TEST(OnlineRetune, OffByDefault) {
  const auto ds = retune_ds();
  const auto model = retune_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 8;
  opts.max_wait_s = 2e-4;
  ServingEngine server(*backend, opts);
  submit_bursty(server, 600, opts.max_wait_s);
  EXPECT_EQ(server.stats().retune_steps, 0u);
  EXPECT_EQ(server.stats().max_batch, 8u);
  EXPECT_TRUE(server.tuning_log().empty());
}

/// Sustained overload with BOTH adaptive mechanisms armed, in the given
/// scheduler mode: whatever the engine decided to do, the journal must
/// satisfy every hysteresis window.
void expect_no_flip_flop_under_overload(std::size_t workers,
                                        bool pipelined) {
  const auto ds = retune_ds();
  const auto model = retune_model(ds);
  BackendOptions bopts;
  bopts.threads = 4;
  bopts.shards = 16;
  auto backend = make_backend(workers > 1 || pipelined ? "sharded-cpu" : "cpu",
                              model, ds, bopts);
  ServingOptions opts = retune_opts();
  opts.workers = workers;
  opts.pipelined = pipelined;
  opts.pipeline_depth = 4;
  opts.queue_capacity = 64;  // tiny queue: bursts pin fill at 100%
  opts.retune_max_batch = 48;
  opts.degrade_under_overload = true;
  opts.degrade_patience = 4;
  ServingEngine server(*backend, opts);
  submit_bursty(server, 1500, opts.max_wait_s);

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 1500u);
  expect_hysteresis(server.tuning_log(), opts);
  // The resize search must respect the queue bound even under pressure.
  EXPECT_LE(s.max_batch, opts.queue_capacity);
}

TEST(OnlineRetune, NoFlipFlopSerial) {
  expect_no_flip_flop_under_overload(1, false);
}

TEST(OnlineRetune, NoFlipFlopMultiWorker) {
  expect_no_flip_flop_under_overload(4, false);
}

TEST(OnlineRetune, NoFlipFlopPipelined) {
  expect_no_flip_flop_under_overload(1, true);
}

TEST(OnlineRetune, DeterministicRetuneBitIdenticalToSerialReplay) {
  // The acceptance contract: with deterministic pipelining AND online
  // retuning, flips only move batch boundaries — replaying the logged
  // ranges serially reproduces the exact vertex state, proven by the next
  // batch being bit-identical.
  const auto ds = retune_ds();
  const auto model = retune_model(ds);
  BackendOptions bopts;
  bopts.threads = 4;
  bopts.shards = 16;
  auto piped = make_backend("sharded-cpu", model, ds, bopts);
  ServingOptions opts = retune_opts();
  opts.pipelined = true;
  opts.pipeline_depth = 4;
  opts.deterministic = true;
  const std::size_t n = 1600;
  ServingEngine server(*piped, opts);
  submit_bursty(server, n, opts.max_wait_s);

  EXPECT_EQ(server.stats().num_requests, n);
  const auto batches = server.batch_log();
  std::size_t expect = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.begin, expect);  // in order, no gaps, nothing twice
    expect = b.end;
  }
  EXPECT_EQ(expect, n);

  auto serial = make_backend("cpu", model, ds);
  for (const auto& b : batches) serial->process_batch(b);
  const graph::BatchRange next{n, n + 50};
  const auto a = piped->process_batch(next);
  const auto b = serial->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f);
}

TEST(OnlineRetune, OptionValidation) {
  const auto ds = retune_ds();
  const auto model = retune_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts = retune_opts();
  opts.retune_interval = 0;
  EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  opts = retune_opts();
  opts.retune_min_batch = 64;
  opts.retune_max_batch = 32;
  EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  opts = retune_opts();
  opts.retune_margin = 0.5;
  EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::runtime
