#include "runtime/backend.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "runtime/driver.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::ModelConfig sat_cfg(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.prune_budget = 3;
  cfg.attention = core::AttentionKind::kSimplified;
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  cfg.lut_bins = 16;
  return cfg;
}

core::TgnModel sat_model(const data::Dataset& ds) {
  core::TgnModel model(sat_cfg(ds), 1);
  model.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  return model;
}

TEST(BackendFactory, AllRegistryKeysConstructible) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  EXPECT_EQ(backend_keys().size(), 6u);
  for (const auto& key : backend_keys()) {
    auto b = make_backend(key, model, ds);
    ASSERT_NE(b, nullptr) << key;
    EXPECT_EQ(b->name(), key);
    EXPECT_FALSE(b->describe().empty());
    EXPECT_EQ(&b->dataset(), &ds);
  }
}

TEST(BackendFactory, UnknownKeyThrowsWithRegistry) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  try {
    make_backend("tpu", model, ds);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cpu-mt"), std::string::npos);
  }
}

TEST(BackendFactory, UnknownFpgaDeviceThrows) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  BackendOptions opts;
  opts.fpga_device = "versal";
  EXPECT_THROW(make_backend("fpga", model, ds, opts), std::invalid_argument);
}

TEST(BackendFactory, ModelledBackendsFlagTheirTiming) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  for (const auto& key : backend_keys()) {
    auto b = make_backend(key, model, ds);
    const auto out = b->process_batch({0, 50});
    const bool modelled = key == "gpu-sim" || key == "fpga";
    EXPECT_EQ(out.modelled_timing, modelled) << key;
    EXPECT_GE(out.latency_s, 0.0) << key;
    EXPECT_GT(out.functional.nodes.size(), 0u) << key;
    EXPECT_EQ(out.functional.embeddings.rows(), out.functional.nodes.size())
        << key;
  }
}

TEST(BackendFactory, ResetRestoresInitialBehaviour) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  for (const auto& key : backend_keys()) {
    auto b = make_backend(key, model, ds);
    const auto first = b->process_batch({0, 60});
    b->process_batch({60, 120});
    b->reset();
    const auto again = b->process_batch({0, 60});
    ASSERT_EQ(first.functional.nodes.size(), again.functional.nodes.size())
        << key;
    for (std::size_t i = 0; i < first.functional.embeddings.size(); ++i)
      EXPECT_EQ(first.functional.embeddings[i], again.functional.embeddings[i])
          << key;
  }
}

TEST(BackendFactory, PrecisionSuffixKeysConstructAndReportTheirMode) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  for (const std::string key :
       {"cpu:int8", "cpu:bf16", "cpu-mt:int8", "sharded-cpu:int8",
        "cpu:fp32"}) {
    auto b = make_backend(key, model, ds);
    ASSERT_NE(b, nullptr) << key;
    EXPECT_EQ(b->name(), key == "cpu:fp32" ? "cpu" : key) << key;
    const auto out = b->process_batch({0, 50});
    EXPECT_GT(out.functional.nodes.size(), 0u) << key;
  }
  // ":fp32" names the default path — name() stays the bare key for the
  // sharded backend too, and describe() carries the mode where reduced.
  EXPECT_NE(make_backend("cpu:int8", model, ds)->describe().find("int8"),
            std::string::npos);
}

TEST(BackendFactory, CpuAndCpuMtInt8AreBitIdentical) {
  // The int8 GEMMs accumulate exactly in int32 with a per-element fp32
  // epilogue, so thread count never moves a bit — the same cross-mode
  // contract the fp32 path pins, now for the quantized one.
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  auto serial = make_backend("cpu:int8", model, ds);
  BackendOptions opts;
  opts.threads = 4;
  auto mt = make_backend("cpu-mt:int8", model, ds, opts);
  for (const auto& r : ds.graph.fixed_size_batches(0, 300, 60)) {
    const auto a = serial->process_batch(r);
    const auto b = mt->process_batch(r);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes);
    for (std::size_t i = 0; i < a.functional.embeddings.size(); ++i)
      ASSERT_EQ(a.functional.embeddings[i], b.functional.embeddings[i])
          << "element " << i;
  }
}

TEST(BackendFactory, BadPrecisionSuffixThrows) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  EXPECT_THROW(make_backend("cpu:int4", model, ds), std::invalid_argument);
  EXPECT_THROW(make_backend("cpu:", model, ds), std::invalid_argument);
}

TEST(BackendFactory, ModelledBackendsRejectExplicitPrecision) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  for (const std::string key : {"fpga:int8", "gpu-sim:int8", "apan:bf16"})
    EXPECT_THROW(make_backend(key, model, ds), std::invalid_argument) << key;
  BackendOptions opts;
  opts.precision = kernels::Precision::kInt8;
  EXPECT_THROW(make_backend("fpga", model, ds, opts), std::invalid_argument);
  // An explicit fp32 suffix on a modelled platform is harmless.
  EXPECT_NE(make_backend("fpga:fp32", model, ds), nullptr);
}

TEST(Driver, StreamAccountingMatchesRange) {
  const auto ds = tiny_ds();
  const auto model = sat_model(ds);
  auto b = make_backend("cpu", model, ds);
  const auto res = measure_stream(*b, ds.test_range(), 25);
  EXPECT_EQ(res.num_edges, ds.test_range().size());
  EXPECT_EQ(res.batch_latency_s.size(),
            (ds.test_range().size() + 24) / 25);
  EXPECT_GT(res.num_embeddings, 0u);
  EXPECT_GT(res.throughput_eps(), 0.0);
  EXPECT_GE(res.percentile(1.0), res.percentile(0.5));
}

}  // namespace
}  // namespace tgnn::runtime
