// Shutdown races: stop() must terminate cleanly — no deadlock, no lost
// typed outcome, no use-after-stop — while submitters and drainers are
// racing it, in every scheduler mode and under every admission policy
// (including a submitter parked in a shed wait). Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "data/synthetic.hpp"
#include "runtime/serving.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

// A longer stream for the stop-vs-submit race: the submitter must still
// have work left when stop() lands mid-stream.
data::Dataset long_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 20000;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::TgnModel tiny_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 1);
}

struct ModeCase {
  const char* name;
  const char* key;
  std::size_t workers;
  bool pipelined;
};

const ModeCase kModes[] = {
    {"serial", "cpu", 1, false},
    {"multi-worker", "sharded-cpu", 2, false},
    {"pipelined", "cpu", 1, true},
};

ServingOptions mode_opts(const ModeCase& m) {
  ServingOptions opts;
  opts.max_batch = 8;
  opts.max_wait_s = 1e-4;
  opts.queue_capacity = 16;
  opts.workers = m.workers;
  opts.pipelined = m.pipelined;
  return opts;
}

BackendOptions mode_bopts(const ModeCase& m) {
  BackendOptions bopts;
  if (m.workers > 1) bopts.threads = static_cast<int>(m.workers);
  return bopts;
}

TEST(ShutdownRace, StopVersusSubmit) {
  for (const auto& m : kModes) {
    SCOPED_TRACE(m.name);
    const auto ds = long_ds();
    const auto model = tiny_model(ds);
    auto backend = make_backend(m.key, model, ds, mode_bopts(m));
    ServingEngine server(*backend, mode_opts(m));

    std::atomic<std::size_t> submitted{0};
    std::thread submitter([&] {
      try {
        for (std::size_t i = 0; i < ds.num_edges(); ++i) {
          server.submit(i);
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::logic_error&) {
        // stop() landed mid-stream — the expected exit.
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Stopwatch sw;
    server.stop();
    EXPECT_LT(sw.seconds(), 30.0);
    submitter.join();

    // Everything admitted before the stop was resolved, nothing invented.
    const auto s = server.stats();
    EXPECT_EQ(s.num_requests + s.num_failed,
              submitted.load(std::memory_order_relaxed));
    EXPECT_EQ(server.outcome_log().size(),
              submitted.load(std::memory_order_relaxed));
    EXPECT_THROW(server.submit(submitted.load()), std::logic_error);
  }
}

TEST(ShutdownRace, StopVersusDrain) {
  for (const auto& m : kModes) {
    SCOPED_TRACE(m.name);
    const auto ds = tiny_ds();
    const auto model = tiny_model(ds);
    auto backend = make_backend(m.key, model, ds, mode_bopts(m));
    ServingEngine server(*backend, mode_opts(m));

    for (std::size_t i = 0; i < 64; ++i) server.submit(i);
    std::thread drainer([&] { server.drain(); });
    server.stop();  // races the drain; both must return
    drainer.join();
    EXPECT_EQ(server.stats().num_requests + server.stats().num_failed, 64u);
  }
}

TEST(ShutdownRace, ConcurrentStopsAreIdempotent) {
  for (const auto& m : kModes) {
    SCOPED_TRACE(m.name);
    const auto ds = tiny_ds();
    const auto model = tiny_model(ds);
    auto backend = make_backend(m.key, model, ds, mode_bopts(m));
    ServingEngine server(*backend, mode_opts(m));
    for (std::size_t i = 0; i < 32; ++i) server.submit(i);

    std::thread other([&] { server.stop(); });
    server.stop();
    other.join();
    EXPECT_EQ(server.stats().num_requests + server.stats().num_failed, 32u);
  }
}

TEST(ShutdownRace, StopWhileSubmitterParkedInShedWait) {
  // A submitter blocked in the kShed bounded wait must be released by
  // stop() immediately — not after its full shed_wait_s.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 1;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;  // the queue stays full
  opts.admission = AdmissionPolicy::kShed;
  opts.shed_wait_s = 30.0;  // a stop must not wait this out
  ServingEngine server(*backend, opts);

  ASSERT_TRUE(server.submit(0));
  std::atomic<bool> threw{false};
  std::thread submitter([&] {
    try {
      server.submit(1);  // parks in the shed wait (queue full)
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stopwatch sw;
  server.stop();
  submitter.join();
  EXPECT_LT(sw.seconds(), 10.0);
  EXPECT_TRUE(threw.load());
  // The parked request was neither served nor shed — it never entered.
  EXPECT_EQ(server.stats().num_requests, 1u);
  EXPECT_EQ(server.stats().num_shed, 0u);
}

TEST(ShutdownRace, StopWhileSubmitterParkedInDeadlineBlock) {
  // Same for kDeadline, whose submit blocks like kBlock.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 1;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;
  opts.admission = AdmissionPolicy::kDeadline;
  opts.deadline_s = 60.0;  // nothing expires during the test
  ServingEngine server(*backend, opts);

  ASSERT_TRUE(server.submit(0));
  std::atomic<bool> threw{false};
  std::thread submitter([&] {
    try {
      server.submit(1);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Stopwatch sw;
  server.stop();
  submitter.join();
  EXPECT_LT(sw.seconds(), 10.0);
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(server.stats().num_requests, 1u);
}

}  // namespace
}  // namespace tgnn::runtime
