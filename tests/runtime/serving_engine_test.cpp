#include "runtime/serving.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "data/synthetic.hpp"
#include "runtime/driver.hpp"
#include "tensor/ops.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::TgnModel tiny_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 1);
}

TEST(ServingEngine, BatchSizeCapRespected) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 4;
  opts.max_wait_s = 0.1;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 12; ++i) server.submit(i);
  server.drain();

  const auto batches = server.batch_log();
  std::size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 4u);
    EXPECT_GE(b.size(), 1u);
    total += b.size();
  }
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(server.stats().num_requests, 12u);
}

TEST(ServingEngine, MaxWaitFlushesPartialBatch) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 100;  // never reached
  opts.max_wait_s = 0.05;
  ServingEngine server(*backend, opts);
  server.submit(0);
  server.submit(1);
  server.submit(2);
  // Do NOT drain: the 50 ms deadline alone must flush the partial batch.
  for (int i = 0; i < 400 && server.stats().num_requests < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  const auto batches = server.batch_log();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].begin, 0u);
  EXPECT_EQ(batches[0].end, 3u);
  server.drain();
}

TEST(ServingEngine, DrainFlushesPromptly) {
  // drain() must not sit out the remainder of a long max_wait deadline.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;  // would stall half a minute without force-flush
  ServingEngine server(*backend, opts);
  server.submit(0);
  server.submit(1);
  Stopwatch sw;
  server.drain();
  EXPECT_LT(sw.seconds(), 5.0);
  ASSERT_EQ(server.batch_log().size(), 1u);
  EXPECT_EQ(server.batch_log()[0].size(), 2u);
}

TEST(ServingEngine, BatchesAreChronologicalAndContiguous) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 16;
  opts.max_wait_s = 1e-4;
  ServingEngine server(*backend, opts);
  const std::size_t begin = 100, end = 300;
  for (std::size_t i = begin; i < end; ++i) server.submit(i);
  server.drain();

  const auto batches = server.batch_log();
  ASSERT_FALSE(batches.empty());
  std::size_t expect = begin;
  for (const auto& b : batches) {
    EXPECT_EQ(b.begin, expect);  // in order, no gaps, no overlap
    EXPECT_GT(b.end, b.begin);
    expect = b.end;
  }
  EXPECT_EQ(expect, end);
}

TEST(ServingEngine, OutOfOrderSubmissionThrows) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingEngine server(*backend);
  server.submit(5);
  EXPECT_THROW(server.submit(7), std::invalid_argument);
  EXPECT_THROW(server.submit(4), std::invalid_argument);
  server.submit(6);  // the successor is fine
  server.drain();
}

TEST(ServingEngine, ServedStateMatchesOfflineStream) {
  // Deterministic split: 200 requests, cap 50, generous flush deadline =>
  // exactly four batches of 50 — the same ranges an offline run_stream
  // produces, so both backends end in bit-identical state.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto served = make_backend("cpu", model, ds);
  auto offline = make_backend("cpu", model, ds);

  ServingOptions opts;
  opts.max_batch = 50;
  opts.max_wait_s = 10.0;
  {
    ServingEngine server(*served, opts);
    for (std::size_t i = 0; i < 200; ++i) server.submit(i);
    server.drain();
    for (const auto& b : server.batch_log()) EXPECT_EQ(b.size(), 50u);
  }
  run_stream(*offline, {0, 200}, 50);

  const graph::BatchRange next{200, 250};
  const auto a = served->process_batch(next);
  const auto b = offline->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f);
}

TEST(ServingEngine, StatsAreCoherent) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 32;
  opts.max_wait_s = 1e-3;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 150; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 150u);
  EXPECT_GT(s.num_batches, 0u);
  EXPECT_LE(s.p50_latency_s, s.p95_latency_s);
  EXPECT_LE(s.p95_latency_s, s.p99_latency_s);
  EXPECT_LE(s.p99_latency_s, s.max_latency_s);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_NEAR(s.mean_batch_size,
              150.0 / static_cast<double>(s.num_batches), 1e-9);
  EXPECT_EQ(server.request_latency_s().size(), 150u);
  for (double l : server.request_latency_s()) EXPECT_GE(l, 0.0);
}

TEST(ServingEngine, LatencySplitsIntoQueueWaitAndService) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 25;
  opts.max_wait_s = 1e-3;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 100; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  // Each per-request end-to-end sample is its queue wait plus its batch's
  // service time, so the end-to-end quantiles dominate each component's
  // (pointwise domination is preserved by order statistics).
  EXPECT_GE(s.p50_queue_wait_s, 0.0);
  EXPECT_GT(s.p50_service_s, 0.0);
  EXPECT_LE(s.p50_queue_wait_s, s.p95_queue_wait_s);
  EXPECT_LE(s.p50_service_s, s.p95_service_s);
  EXPECT_GE(s.p50_latency_s, s.p50_queue_wait_s);
  EXPECT_GE(s.p50_latency_s, s.p50_service_s);
  EXPECT_GE(s.p95_latency_s, s.p95_queue_wait_s);
  EXPECT_GE(s.p95_latency_s, s.p95_service_s);
}

TEST(ServingEngine, IdleEngineStatsAreAllZero) {
  // Regression: stats() before any batch completes used to risk 0/0 NaNs
  // (mean_batch_size, throughput). An idle engine reports plain zeros.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingEngine server(*backend);
  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 0u);
  EXPECT_EQ(s.num_batches, 0u);
  for (const double v :
       {s.p50_latency_s, s.p95_latency_s, s.p99_latency_s, s.max_latency_s,
        s.p50_queue_wait_s, s.p95_queue_wait_s, s.p50_service_s,
        s.p95_service_s, s.throughput_rps, s.mean_batch_size}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);
  }
  EXPECT_EQ(s.peak_parallel_batches, 0u);
  EXPECT_EQ(s.peak_in_flight_batches, 0u);
  EXPECT_EQ(s.peak_queue_depth, 0u);
}

TEST(ServingEngine, StopFlushesPendingAndRejectsLateSubmits) {
  // stop() is the graceful shutdown: everything submitted is flushed and
  // served (even with a deadline that would otherwise park the partial
  // batch for half a minute), repeat calls are no-ops, and submits after
  // stop fail loudly instead of queueing into a dead scheduler.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 7; ++i) server.submit(i);
  Stopwatch sw;
  server.stop();
  EXPECT_LT(sw.seconds(), 5.0);
  EXPECT_EQ(server.stats().num_requests, 7u);
  server.stop();  // idempotent
  EXPECT_THROW(server.submit(7), std::logic_error);
  EXPECT_EQ(server.stats().num_requests, 7u);
}

TEST(ServingEngine, OccupancyGaugesTrackSerialMode) {
  // Serial scheduler: at most one batch is ever in flight, and the queue
  // gauge records that requests actually piled up behind the batch cap.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 10;
  opts.max_wait_s = 1e-3;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 80; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 80u);
  EXPECT_GE(s.peak_in_flight_batches, 1u);
  EXPECT_EQ(s.peak_parallel_batches, 1u);
  EXPECT_GE(s.peak_queue_depth, 1u);
}

TEST(ServingEngine, PercentileOfEmptySamplesIsZero) {
  EXPECT_EQ(percentile_of({}, 0.5), 0.0);
  EXPECT_EQ(percentile_of({}, 1.0), 0.0);
}

}  // namespace
}  // namespace tgnn::runtime
