// The sharded backend + conflict-aware multi-worker serving contract:
//  * deterministic mode is bit-identical to the serial "cpu" backend,
//  * relaxed mode serves every request with chronological per-vertex
//    writes (memory timestamps never regress),
//  * the scheduler machinery (lane clamp, non-concurrent backend rejection,
//    stats split) behaves.
// The concurrency-heavy tests here double as the ThreadSanitizer CI load.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "data/synthetic.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "runtime/sharded_backend.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset serving_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 400;
  dcfg.num_items = 300;
  dcfg.num_edges = 1200;
  dcfg.edge_dim = 6;
  dcfg.seed = 31;
  return data::make_synthetic(dcfg);
}

core::TgnModel sat_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.prune_budget = 3;
  cfg.attention = core::AttentionKind::kSimplified;
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  cfg.lut_bins = 16;
  core::TgnModel model(cfg, 1);
  model.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  return model;
}

/// Serve [0, n) through a sharded-cpu ServingEngine with deterministic
/// batch boundaries (cap divides n, generous flush deadline).
void serve_prefix(Backend& backend, std::size_t n, std::size_t cap,
                  std::size_t workers, bool deterministic) {
  ServingOptions opts;
  opts.max_batch = cap;
  opts.max_wait_s = 10.0;
  opts.workers = workers;
  opts.deterministic = deterministic;
  ServingEngine server(backend, opts);
  for (std::size_t i = 0; i < n; ++i) server.submit(i);
  server.drain();
  for (const auto& b : server.batch_log()) ASSERT_EQ(b.size(), cap);
}

TEST(ShardedServing, DeterministicModeBitIdenticalToSerialCpu) {
  // 4 workers racing over disjoint lanes, exact (read+write) footprints:
  // the final state must match the serial "cpu" backend bit for bit.
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  BackendOptions bopts;
  bopts.threads = 4;
  bopts.shards = 8;
  auto sharded = make_backend("sharded-cpu", model, ds, bopts);
  auto serial = make_backend("cpu", model, ds);

  serve_prefix(*sharded, 800, 40, /*workers=*/4, /*deterministic=*/true);
  run_stream(*serial, {0, 800}, 40);

  const graph::BatchRange next{800, 860};
  const auto a = sharded->process_batch(next);
  const auto b = serial->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f);
}

TEST(ShardedServing, RelaxedModeServesAllWithChronologicalWrites) {
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  BackendOptions bopts;
  bopts.threads = 4;
  bopts.shards = 16;
  auto backend = make_backend("sharded-cpu", model, ds, bopts);

  ServingOptions opts;
  opts.max_batch = 16;
  opts.max_wait_s = 1e-4;
  opts.workers = 4;
  ServingEngine server(*backend, opts);
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) server.submit(i);
  server.drain();

  // Every request served exactly once; batches dispatched in stream order,
  // contiguous, no overlap.
  EXPECT_EQ(server.stats().num_requests, n);
  std::size_t expect = 0;
  for (const auto& b : server.batch_log()) {
    EXPECT_EQ(b.begin, expect);
    expect = b.end;
  }
  EXPECT_EQ(expect, n);

  // Per-vertex chronology: after the stream, each vertex's memory
  // timestamp equals the timestamp of its last consumed event — write-
  // write conflicts serialized in stream order mean no regressions; spot-
  // check that no memory timestamp exceeds the stream horizon and that
  // state is consistent enough to keep processing.
  auto* sharded = dynamic_cast<ShardedCpuBackend*>(backend.get());
  ASSERT_NE(sharded, nullptr);
  const auto out = sharded->process_batch({n, n + 50});
  EXPECT_EQ(out.functional.embeddings.rows(), out.functional.nodes.size());
}

TEST(ShardedServing, WorkersRequireConcurrentBackend) {
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  auto cpu = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.workers = 2;
  EXPECT_THROW(ServingEngine(*cpu, opts), std::invalid_argument);
}

TEST(ShardedServing, WorkersClampToBackendLanes) {
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  BackendOptions bopts;
  bopts.threads = 2;  // two lanes only
  auto backend = make_backend("sharded-cpu", model, ds, bopts);
  ServingOptions opts;
  opts.workers = 8;
  ServingEngine server(*backend, opts);
  EXPECT_EQ(server.workers(), 2u);
  server.submit(0);
  server.drain();
  EXPECT_EQ(server.stats().num_requests, 1u);
}

TEST(ShardedServing, OfflineContractMatchesCpuBackend) {
  // Driven through the plain Backend interface (lane 0, serial) the
  // sharded backend is the cpu backend over sharded state.
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  auto sharded = make_backend("sharded-cpu", model, ds);
  auto cpu = make_backend("cpu", model, ds);
  for (const auto& r : ds.graph.fixed_size_batches(0, 400, 80)) {
    const auto a = sharded->process_batch(r);
    const auto b = cpu->process_batch(r);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes);
    EXPECT_EQ(
        ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
        0.0f);
  }
}

TEST(ShardedServing, ReadFootprintCoversSampledNeighbors) {
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  BackendOptions bopts;
  bopts.shards = 8;
  auto backend = make_backend("sharded-cpu", model, ds, bopts);
  auto* sharded = dynamic_cast<ShardedCpuBackend*>(backend.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 8u);

  // Populate state, then the footprint of the next batch must contain
  // every neighbor the engine would read for it.
  run_stream(*backend, {0, 300}, 50);
  const graph::BatchRange next{300, 340};
  std::vector<graph::NodeId> fp;
  sharded->read_footprint(next, fp);
  EXPECT_TRUE(std::is_sorted(fp.begin(), fp.end()));

  // Shadow engine replaying the same prefix holds identical state; its
  // per-endpoint neighbor samples are exactly what the GNN stage reads.
  core::InferenceEngine shadow(model, ds);
  for (const auto& r : ds.graph.fixed_size_batches(0, 300, 50))
    shadow.process_batch(r);
  std::unordered_map<graph::NodeId, double> t_event;
  for (const auto& e : ds.graph.edges(next)) {
    for (graph::NodeId v : {e.src, e.dst}) {
      auto [it, inserted] = t_event.try_emplace(v, e.ts);
      if (!inserted) it->second = std::max(it->second, e.ts);
    }
  }
  const std::size_t k = model.config().num_neighbors;
  std::vector<graph::NeighborHit> hits;
  for (const auto& [v, t] : t_event) {
    shadow.state().neighbors_into(v, t, k, hits);
    for (const auto& hit : hits)
      EXPECT_TRUE(std::binary_search(fp.begin(), fp.end(), hit.node))
          << "missing neighbor " << hit.node << " of endpoint " << v;
  }
}

TEST(ShardedServing, StressManySmallBatchesBothModes) {
  // TSan workhorse: lots of small batches across 4 lanes, both policies.
  const auto ds = serving_ds();
  const auto model = sat_model(ds);
  for (const bool deterministic : {false, true}) {
    BackendOptions bopts;
    bopts.threads = 4;
    bopts.shards = 32;
    auto backend = make_backend("sharded-cpu", model, ds, bopts);
    ServingOptions opts;
    opts.max_batch = 8;
    opts.max_wait_s = 1e-5;
    opts.workers = 4;
    opts.deterministic = deterministic;
    ServingEngine server(*backend, opts);
    for (std::size_t i = 0; i < 1200; ++i) server.submit(i);
    server.drain();
    const auto s = server.stats();
    EXPECT_EQ(s.num_requests, 1200u) << "deterministic=" << deterministic;
    EXPECT_GT(s.num_batches, 0u);
    EXPECT_GT(s.throughput_rps, 0.0);
  }
}

}  // namespace
}  // namespace tgnn::runtime
