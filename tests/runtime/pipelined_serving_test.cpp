// The staged dataflow serving pipeline (ServingOptions::pipelined):
//  * deterministic pipelining is bit-identical to the serial "cpu" path on
//    every StagedBackend — cpu, cpu-mt, sharded-cpu (the PR's acceptance
//    contract),
//  * a backend without race-free reads is force-upgraded to read-tracked
//    admission, so even "relaxed" pipelining on "cpu" stays deterministic,
//  * stop() with batches mid-pipeline flushes in order — every submitted
//    request served exactly once, no vertex write dropped or applied twice,
//  * the scheduler machinery (StagedBackend requirement, workers/pipelined
//    exclusivity, occupancy gauges) behaves.
// The concurrency-heavy tests here double as TSan/ASan CI load.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset pipe_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 400;
  dcfg.num_items = 300;
  dcfg.num_edges = 1400;
  dcfg.edge_dim = 6;
  dcfg.seed = 43;
  return data::make_synthetic(dcfg);
}

core::TgnModel pipe_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 11);
}

BackendOptions pipe_opts() {
  BackendOptions bopts;
  bopts.threads = 4;  // cpu-mt thread count / sharded-cpu lane count
  bopts.shards = 16;
  return bopts;
}

/// Serve [0, n) pipelined with deterministic batch boundaries (cap divides
/// n, generous flush deadline); returns the final stats.
ServingStats serve_pipelined(Backend& backend, std::size_t n, std::size_t cap,
                             bool deterministic, std::size_t depth = 4) {
  ServingOptions opts;
  opts.max_batch = cap;
  opts.max_wait_s = 10.0;
  opts.pipelined = true;
  opts.pipeline_depth = depth;
  opts.deterministic = deterministic;
  ServingEngine server(backend, opts);
  for (std::size_t i = 0; i < n; ++i) server.submit(i);
  server.drain();
  for (const auto& b : server.batch_log()) EXPECT_EQ(b.size(), cap);
  return server.stats();
}

/// The acceptance contract: pipelined deterministic serving leaves the
/// backend in the exact state the serial "cpu" path produces — proven by
/// the next batch being bit-identical.
void expect_bit_identical_to_serial(const std::string& key,
                                    bool deterministic) {
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto piped = make_backend(key, model, ds, pipe_opts());
  auto serial = make_backend("cpu", model, ds);

  const auto s = serve_pipelined(*piped, 800, 40, deterministic);
  EXPECT_EQ(s.num_requests, 800u) << key;
  run_stream(*serial, {0, 800}, 40);

  const graph::BatchRange next{800, 860};
  const auto a = piped->process_batch(next);
  const auto b = serial->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes) << key;
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f)
      << key;
}

TEST(PipelinedServing, DeterministicBitIdenticalToSerialCpu) {
  expect_bit_identical_to_serial("cpu", /*deterministic=*/true);
}

TEST(PipelinedServing, DeterministicBitIdenticalToSerialCpuMt) {
  expect_bit_identical_to_serial("cpu-mt", /*deterministic=*/true);
}

TEST(PipelinedServing, DeterministicBitIdenticalToSerialShardedCpu) {
  expect_bit_identical_to_serial("sharded-cpu", /*deterministic=*/true);
}

TEST(PipelinedServing, RelaxedOnCpuIsForceUpgradedToReadTracking) {
  // "cpu" has no shard locks, so relaxed admission would race on neighbor
  // memory reads; the engine must silently track read footprints instead —
  // making even the relaxed flag bit-identical to serial execution.
  expect_bit_identical_to_serial("cpu", /*deterministic=*/false);
}

TEST(PipelinedServing, RelaxedShardedServesAllInOrder) {
  // Relaxed admission on the lock-protected backend: bounded-staleness
  // reads, but every request served exactly once, batches admitted in
  // stream order, contiguous, no overlap.
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto backend = make_backend("sharded-cpu", model, ds, pipe_opts());

  ServingOptions opts;
  opts.max_batch = 16;
  opts.max_wait_s = 1e-4;
  opts.pipelined = true;
  opts.pipeline_depth = 4;
  ServingEngine server(*backend, opts);
  const std::size_t n = 1200;
  for (std::size_t i = 0; i < n; ++i) server.submit(i);
  server.drain();

  EXPECT_EQ(server.stats().num_requests, n);
  std::size_t expect = 0;
  for (const auto& b : server.batch_log()) {
    EXPECT_EQ(b.begin, expect);
    expect = b.end;
  }
  EXPECT_EQ(expect, n);
}

TEST(PipelinedServing, StopMidPipelineFlushesInOrderExactlyOnce) {
  // Bursty arrivals with a tiny flush deadline, then stop() with batches
  // still mid-pipeline: everything submitted must be flushed in stream
  // order and served exactly once — the final state matches a serial
  // replay of the very same batch ranges bit for bit (a dropped or
  // double-applied vertex write would diverge it).
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto piped = make_backend("sharded-cpu", model, ds, pipe_opts());

  ServingOptions opts;
  opts.max_batch = 24;
  opts.max_wait_s = 1e-5;  // bursts flush as ragged partial batches
  opts.pipelined = true;
  opts.pipeline_depth = 4;
  opts.deterministic = true;
  const std::size_t n = 700;
  auto server = std::make_unique<ServingEngine>(*piped, opts);
  for (std::size_t i = 0; i < n; ++i) server->submit(i);
  server->stop();  // NOT drain(): shutdown races the pipeline

  const auto s = server->stats();
  EXPECT_EQ(s.num_requests, n);  // nothing dropped
  const auto batches = server->batch_log();
  std::size_t expect = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.begin, expect);  // in order, no gaps, nothing twice
    expect = b.end;
  }
  EXPECT_EQ(expect, n);

  // stop() is idempotent; late submits are rejected.
  server->stop();
  EXPECT_THROW(server->submit(n), std::logic_error);
  server.reset();

  // Serial replay of the SAME ranges => bit-identical state.
  auto serial = make_backend("cpu", model, ds);
  for (const auto& b : batches) serial->process_batch(b);
  const graph::BatchRange next{n, n + 50};
  const auto a = piped->process_batch(next);
  const auto c = serial->process_batch(next);
  ASSERT_EQ(a.functional.nodes, c.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, c.functional.embeddings),
      0.0f);
}

TEST(PipelinedServing, RequiresStagedBackend) {
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto gpu = make_backend("gpu-sim", model, ds);
  ServingOptions opts;
  opts.pipelined = true;
  EXPECT_THROW(ServingEngine(*gpu, opts), std::invalid_argument);
}

TEST(PipelinedServing, MutuallyExclusiveWithWorkerLanes) {
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto backend = make_backend("sharded-cpu", model, ds, pipe_opts());
  ServingOptions opts;
  opts.pipelined = true;
  opts.workers = 4;
  EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  opts.workers = 1;
  opts.pipeline_depth = 0;
  EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
}

TEST(PipelinedServing, OccupancyGaugesObservable) {
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto backend = make_backend("sharded-cpu", model, ds, pipe_opts());
  const std::size_t depth = 3;
  const auto s =
      serve_pipelined(*backend, 600, 30, /*deterministic=*/false, depth);
  EXPECT_GE(s.peak_in_flight_batches, 1u);
  EXPECT_LE(s.peak_in_flight_batches, depth + 1);  // formed + depth admitted
  EXPECT_GE(s.peak_parallel_batches, 1u);
  EXPECT_LE(s.peak_parallel_batches, depth);
  EXPECT_GE(s.peak_queue_depth, 1u);
}

TEST(PipelinedServing, DepthOneDegeneratesToSerialPipeline) {
  // One slot: stages still hand off over the FIFOs, but batches never
  // overlap — a correctness floor for the stall semantics.
  const auto ds = pipe_ds();
  const auto model = pipe_model(ds);
  auto backend = make_backend("cpu", model, ds);
  const auto s =
      serve_pipelined(*backend, 400, 40, /*deterministic=*/true, 1);
  EXPECT_EQ(s.num_requests, 400u);
  EXPECT_EQ(s.peak_parallel_batches, 1u);
}

}  // namespace
}  // namespace tgnn::runtime
