// Edge cases of the one shared streaming loop every driver delegates to.
#include <gtest/gtest.h>

#include "runtime/stream_result.hpp"

namespace tgnn::runtime {
namespace {

StepOutcome counting_step(const graph::BatchRange& r,
                          std::vector<graph::BatchRange>& seen) {
  seen.push_back(r);
  StepOutcome out;
  out.latency_s = 1.0;
  out.num_embeddings = r.size();  // stand-in: one embedding per edge
  out.parts.gnn = 0.5;
  return out;
}

TEST(DriveBatches, EmptyBatchListProducesEmptyResult) {
  std::vector<graph::BatchRange> seen;
  const auto res = drive_batches(
      {}, [&](const graph::BatchRange& r) { return counting_step(r, seen); });
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(res.num_edges, 0u);
  EXPECT_EQ(res.num_embeddings, 0u);
  EXPECT_EQ(res.total_seconds, 0.0);
  EXPECT_TRUE(res.batch_latency_s.empty());
  // Zero-division guards on the derived metrics.
  EXPECT_EQ(res.throughput_eps(), 0.0);
  EXPECT_EQ(res.mean_latency_s(), 0.0);
  EXPECT_EQ(res.ns_per_embedding(), 0.0);
  EXPECT_EQ(res.percentile(0.5), 0.0);
}

TEST(DriveBatches, EmptyRangesAreSkippedNotStepped) {
  // Fixed-window batching produces empty batches for quiet windows; the
  // loop must not invoke the step (a backend would process zero edges and
  // pollute the latency samples).
  std::vector<graph::BatchRange> seen;
  const std::vector<graph::BatchRange> batches = {
      {0, 0}, {0, 3}, {3, 3}, {3, 5}, {5, 5}};
  const auto res = drive_batches(batches, [&](const graph::BatchRange& r) {
    return counting_step(r, seen);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].begin, 0u);
  EXPECT_EQ(seen[0].end, 3u);
  EXPECT_EQ(seen[1].begin, 3u);
  EXPECT_EQ(seen[1].end, 5u);
  EXPECT_EQ(res.num_edges, 5u);
  EXPECT_EQ(res.batch_latency_s.size(), 2u);  // one sample per NON-empty batch
  EXPECT_EQ(res.total_seconds, 2.0);
  EXPECT_EQ(res.parts.gnn, 1.0);  // per-part times accumulate across batches
}

TEST(DriveBatches, TrailingPartialBatchIsAccounted) {
  // 10 edges at batch size 4 -> 4, 4, and a trailing partial 2.
  std::vector<graph::BatchRange> seen;
  const std::vector<graph::BatchRange> batches = {{0, 4}, {4, 8}, {8, 10}};
  const auto res = drive_batches(batches, [&](const graph::BatchRange& r) {
    return counting_step(r, seen);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.back().size(), 2u);
  EXPECT_EQ(res.num_edges, 10u);
  EXPECT_EQ(res.num_embeddings, 10u);
  EXPECT_EQ(res.batch_latency_s.size(), 3u);
}

TEST(DriveBatches, MaxBatchLargerThanRangeIsOneShortBatch) {
  // A batch-size cap beyond the range must not pad, repeat, or overrun:
  // the whole range goes through as one short batch.
  std::vector<graph::BatchRange> seen;
  const std::vector<graph::BatchRange> batches = {{7, 12}};  // "cap 100"
  const auto res = drive_batches(batches, [&](const graph::BatchRange& r) {
    return counting_step(r, seen);
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].begin, 7u);
  EXPECT_EQ(seen[0].end, 12u);
  EXPECT_EQ(res.num_edges, 5u);
  EXPECT_EQ(res.mean_latency_s(), 1.0);
}

}  // namespace
}  // namespace tgnn::runtime
