// The serving scheduler's hazard-ledger audit: the admission invariant —
// no two in-flight batches with intersecting write footprints — restated
// over raw footprints and proven falsifiable. The engine-level integration
// (audit after every pipelined admission) only runs under
// -DTGNN_CHECKED=ON; the primitive itself is always available, so its
// contract is pinned in every build.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/serving.hpp"

namespace tgnn::runtime {
namespace {

using Footprint = std::vector<graph::NodeId>;

std::vector<std::span<const graph::NodeId>> views(
    const std::vector<Footprint>& fps) {
  return {fps.begin(), fps.end()};
}

TEST(HazardAudit, DisjointFootprintsPass) {
  const std::vector<Footprint> fps{{1, 2, 3}, {4, 5}, {}, {6}};
  audit_disjoint_footprints(views(fps));
  audit_disjoint_footprints({});  // vacuously disjoint
  SUCCEED();
}

TEST(HazardAuditDeathTest, IntersectingFootprintsAbort) {
  const std::vector<Footprint> fps{{1, 2, 3}, {4, 5}, {5, 6}};
  EXPECT_DEATH(audit_disjoint_footprints(views(fps)), "hazard audit");
  // A duplicate WITHIN one footprint is the same corruption (it would
  // double-mark the ledger and double-release at completion).
  const std::vector<Footprint> dup{{7, 8, 7}};
  EXPECT_DEATH(audit_disjoint_footprints(views(dup)), "hazard audit");
}

TEST(HazardAudit, CheckedPipelinedServingRunsTheAuditCleanly) {
  // End-to-end: drive the pipelined scheduler (which, in checked builds,
  // audits the in-flight footprints at every admission) over a real
  // stream. Passing means every admission the engine actually made kept
  // the footprints disjoint — in unchecked builds this degrades to a
  // plain pipelined-serving smoke test.
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 25;
  dcfg.num_edges = 600;
  dcfg.edge_dim = 5;
  dcfg.seed = 11;
  const auto ds = data::make_synthetic(dcfg);

  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 4;
  core::TgnModel model(cfg, 1);

  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.pipelined = true;
  opts.max_batch = 16;
  opts.max_wait_s = 0.0;  // dispatch eagerly: maximize concurrent batches
  ServingEngine engine(*backend, opts);
  for (std::size_t i = 0; i < 300; ++i) engine.submit(i);
  engine.drain();
  engine.stop();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.num_requests, 300u);
}

}  // namespace
}  // namespace tgnn::runtime
