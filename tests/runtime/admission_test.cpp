// Admission-control behavior of the ServingEngine: shed / deadline
// policies, the non-blocking and bounded-wait submit variants, typed
// per-request outcomes, and graceful degradation under sustained
// overload.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "data/synthetic.hpp"
#include "runtime/serving.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::TgnModel tiny_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 1);
}

/// Every submitted index must appear exactly once in the outcome log —
/// the typed-disposition invariant all admission policies share.
void expect_outcomes_partition(const ServingEngine& server,
                               std::size_t num_submitted) {
  const auto log = server.outcome_log();
  ASSERT_EQ(log.size(), num_submitted);
  std::map<std::size_t, RequestOutcome> by_index;
  for (const auto& rec : log)
    EXPECT_TRUE(by_index.emplace(rec.index, rec.outcome).second)
        << "index " << rec.index << " resolved twice";
  for (std::size_t i = 0; i < num_submitted; ++i)
    EXPECT_TRUE(by_index.count(i)) << "index " << i << " never resolved";
}

TEST(Admission, ShedRejectsWithTypedOutcomeWhenQueueFull) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 4;
  opts.max_batch = 100;   // never fills:
  opts.max_wait_s = 30.0; // the scheduler holds the batch open for ages
  opts.admission = AdmissionPolicy::kShed;
  opts.shed_wait_s = 0.0;
  ServingEngine server(*backend, opts);

  // 0..3 fill the queue; 4..9 find it full and shed immediately.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(server.submit(i));
  std::size_t shed = 0;
  for (std::size_t i = 4; i < 10; ++i)
    if (!server.submit(i)) ++shed;
  EXPECT_EQ(shed, 6u);

  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 4u);
  EXPECT_EQ(s.num_shed, 6u);
  EXPECT_EQ(s.num_expired, 0u);
  expect_outcomes_partition(server, 10);
  for (const auto& rec : server.outcome_log())
    EXPECT_EQ(rec.outcome, rec.index < 4 ? RequestOutcome::kServed
                                         : RequestOutcome::kShed);

  // A shed request is CONSUMED: the stream cursor advanced past it, so
  // the next submit must pass the successor of the last shed index.
  EXPECT_THROW(server.submit(4), std::invalid_argument);
  EXPECT_TRUE(server.submit(10));
  server.drain();
}

TEST(Admission, ShedGapsNeverProduceNonContiguousBatches) {
  // Sheds punch index gaps into the stream. The scheduler must cap each
  // micro-batch at the contiguous run — a batch spanning a gap would feed
  // the backend edges that were never admitted.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 4;
  opts.max_batch = 2;  // smaller than the queue: gaps can sit mid-queue
  opts.max_wait_s = 1e-4;
  opts.admission = AdmissionPolicy::kShed;
  opts.shed_wait_s = 0.0;
  ServingEngine server(*backend, opts);

  std::size_t shed = 0;
  const std::size_t kN = 300;
  for (std::size_t i = 0; i < kN; ++i)
    if (!server.submit(i)) ++shed;
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests + s.num_shed, kN);
  EXPECT_EQ(s.num_shed, shed);
  expect_outcomes_partition(server, kN);

  // Batches are contiguous, strictly increasing, and skip exactly the
  // shed indices.
  std::map<std::size_t, RequestOutcome> by_index;
  for (const auto& rec : server.outcome_log())
    by_index[rec.index] = rec.outcome;
  std::size_t prev_end = 0;
  std::size_t served = 0;
  for (const auto& b : server.batch_log()) {
    EXPECT_GE(b.begin, prev_end);
    EXPECT_GT(b.end, b.begin);
    EXPECT_LE(b.size(), opts.max_batch);
    for (std::size_t i = b.begin; i < b.end; ++i) {
      EXPECT_EQ(by_index[i], RequestOutcome::kServed);
      ++served;
    }
    prev_end = b.end;
  }
  EXPECT_EQ(served, s.num_requests);
}

TEST(Admission, DeadlineExpiresStaleRequestsBeforeDispatch) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;  // coalescing would park the batch for ages...
  opts.admission = AdmissionPolicy::kDeadline;
  opts.deadline_s = 5e-3;  // ...but the budget expires requests first
  ServingEngine server(*backend, opts);

  const std::size_t kN = 50;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  // Nothing can dispatch (max_batch unreachable, max_wait huge), so once
  // the 5 ms budget passes the whole backlog expires. Sleep well past the
  // budget BEFORE draining — drain's force-flush would otherwise serve
  // entries that had not expired yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests + s.num_expired, kN);
  EXPECT_GE(s.num_expired, 1u);
  expect_outcomes_partition(server, kN);

  // Expired requests were consumed; the stream continues past them. With
  // a sane deadline the follow-up burst is served normally.
  EXPECT_TRUE(server.submit(kN));
  server.drain();
  EXPECT_GE(server.stats().num_requests, 1u);
}

TEST(Admission, DeadlineServesEverythingUnderLightLoad) {
  // A deadline engine with headroom must behave exactly like kBlock:
  // nothing sheds, nothing expires.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.max_batch = 16;
  opts.max_wait_s = 1e-4;
  opts.admission = AdmissionPolicy::kDeadline;
  opts.deadline_s = 30.0;
  ServingEngine server(*backend, opts);
  const std::size_t kN = 200;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, kN);
  EXPECT_EQ(s.num_expired, 0u);
  EXPECT_EQ(s.num_shed, 0u);
  expect_outcomes_partition(server, kN);
}

TEST(Admission, TrySubmitNeverBlocksAndNeverConsumesOnReject) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;
  ServingEngine server(*backend, opts);

  EXPECT_TRUE(server.try_submit(0));
  EXPECT_TRUE(server.try_submit(1));
  Stopwatch sw;
  EXPECT_FALSE(server.try_submit(2));  // full — instant rejection
  EXPECT_FALSE(server.try_submit(2));
  EXPECT_LT(sw.seconds(), 1.0);
  // Rejection did not consume index 2: submitting its successor first is
  // still an ordering error.
  EXPECT_THROW(server.try_submit(3), std::invalid_argument);

  server.drain();  // clears the queue
  EXPECT_TRUE(server.try_submit(2));  // the same index, retried, admits
  server.drain();
  EXPECT_EQ(server.stats().num_requests, 3u);
}

TEST(Admission, TimedSubmitBoundsTheWaitWithoutConsuming) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 1;
  opts.max_batch = 100;
  opts.max_wait_s = 30.0;
  ServingEngine server(*backend, opts);

  EXPECT_TRUE(server.submit(0, 1.0));
  Stopwatch sw;
  EXPECT_FALSE(server.submit(1, 0.02));  // full: times out in ~20 ms
  const double waited = sw.seconds();
  EXPECT_GE(waited, 0.02);
  EXPECT_LT(waited, 5.0);

  server.drain();
  EXPECT_TRUE(server.submit(1, 0.02));  // not consumed — retry admits
  server.drain();
  EXPECT_EQ(server.stats().num_requests, 2u);
}

TEST(Admission, DegradesUnderSustainedOverloadAndRecovers) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 1;  // every request is a batch formation = one
                       // hysteresis evaluation
  opts.max_wait_s = 0.0;
  opts.degrade_under_overload = true;
  opts.degrade_high = 0.25;
  opts.degrade_low = 0.01;
  opts.degrade_patience = 1;
  ServingEngine server(*backend, opts);
  EXPECT_EQ(server.stats().precision, kernels::Precision::kFp32);

  // Saturate: blocking submits keep the queue at capacity, so batch
  // formations observe a pressured queue and walk the ladder down.
  std::size_t i = 0;
  for (; i < 300; ++i) server.submit(i);
  server.drain();
  const auto pressured = server.stats();
  EXPECT_GE(pressured.degrade_steps, 1u);
  EXPECT_NE(pressured.precision, kernels::Precision::kFp32);
  EXPECT_EQ(pressured.num_requests, 300u);  // degraded, not dropped

  // Clear: paced submits leave the queue empty at formation time, so the
  // hysteresis walks back up to the base precision.
  for (const std::size_t end = i + 60; i < end; ++i) {
    server.submit(i);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.drain();
  EXPECT_EQ(server.stats().precision, kernels::Precision::kFp32);
}

TEST(Admission, BlockPolicyReportsNoOverloadCounters) {
  // The default policy is exactly the pre-admission behavior: every
  // request blocks its way in and is served.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  ServingOptions opts;
  opts.queue_capacity = 2;
  opts.max_batch = 4;
  opts.max_wait_s = 1e-4;
  ServingEngine server(*backend, opts);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(server.submit(i));
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, 100u);
  EXPECT_EQ(s.num_shed + s.num_expired + s.num_failed, 0u);
  EXPECT_EQ(s.degrade_steps, 0u);
  EXPECT_EQ(s.precision, kernels::Precision::kFp32);
  expect_outcomes_partition(server, 100);
}

TEST(Admission, OptionValidation) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);
  {
    ServingOptions opts;
    opts.admission = AdmissionPolicy::kShed;
    opts.shed_wait_s = -1.0;
    EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  }
  {
    ServingOptions opts;
    opts.admission = AdmissionPolicy::kDeadline;
    opts.deadline_s = 0.0;
    EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  }
  {
    ServingOptions opts;
    opts.degrade_under_overload = true;
    opts.degrade_low = 0.8;
    opts.degrade_high = 0.2;
    EXPECT_THROW(ServingEngine(*backend, opts), std::invalid_argument);
  }
}

}  // namespace
}  // namespace tgnn::runtime
