// Fault-injection scenarios over the serving engine (ISSUE 9 tentpole c):
// transient faults are absorbed by bounded retry, permanent faults end in
// a typed kFailed outcome with the stream continuing, and no scenario —
// across the stage-execution and channel-handoff sites, in serial,
// pipelined, and multi-worker modes — ever deadlocks or leaves per-vertex
// chronology broken.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/serving.hpp"
#include "util/fault_injector.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_edges = 400;
  dcfg.edge_dim = 7;
  dcfg.seed = 99;
  return data::make_synthetic(dcfg);
}

core::TgnModel tiny_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 1);
}

struct InjectorGuard {
  explicit InjectorGuard(std::uint64_t seed) : fi(seed) {
    util::set_fault_injector(&fi);
  }
  ~InjectorGuard() { util::set_fault_injector(nullptr); }
  util::FaultInjector fi;
};

ServingOptions fast_opts() {
  ServingOptions opts;
  opts.max_batch = 16;
  opts.max_wait_s = 1e-4;
  opts.retry_backoff_s = 1e-6;  // keep retried tests fast
  return opts;
}

TEST(FaultInjection, TransientStageFaultsAreRetriedAway) {
  // Exactly 3 injected faults, 3 retries allowed per batch: the first
  // batch eats all three on consecutive attempts and then succeeds.
  // Deterministic — every request is served, none fail.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);

  InjectorGuard g(11);
  util::FaultPlan plan;  // probability 1, transient
  plan.max_faults = 3;
  g.fi.arm(util::FaultSite::kStageExec, plan);

  ServingOptions opts = fast_opts();
  opts.fault_retries = 3;
  ServingEngine server(*backend, opts);
  const std::size_t kN = 100;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_requests, kN);
  EXPECT_EQ(s.num_failed, 0u);
  EXPECT_EQ(s.fault_retries, 3u);
  EXPECT_EQ(g.fi.injected(util::FaultSite::kStageExec), 3u);
}

TEST(FaultInjection, ExhaustedRetriesFailTheBatchTyped) {
  // Four consecutive faults against three retries: the first batch fails
  // permanently with kFailed outcomes; the engine keeps serving and the
  // error is reported, not thrown at the submitter.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);

  InjectorGuard g(11);
  util::FaultPlan plan;
  plan.max_faults = 4;
  g.fi.arm(util::FaultSite::kStageExec, plan);

  ServingOptions opts = fast_opts();
  opts.fault_retries = 3;
  ServingEngine server(*backend, opts);
  const std::size_t kN = 100;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_GE(s.num_failed, 1u);
  EXPECT_EQ(s.num_requests + s.num_failed, kN);
  EXPECT_FALSE(server.last_error().empty());

  // The stream continued past the failed batch: later batches served, and
  // a post-drain probe batch still executes cleanly (chronology intact).
  EXPECT_GE(s.num_requests, 1u);
  EXPECT_NO_THROW(backend->process_batch({kN, kN + 20}));
}

TEST(FaultInjection, PermanentFaultFailsOnlyItsBatch) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);

  InjectorGuard g(3);
  util::FaultPlan plan;
  plan.transient = false;  // not retryable
  plan.max_faults = 1;
  plan.skip_first = 2;  // fail the third batch, mid-stream
  g.fi.arm(util::FaultSite::kStageExec, plan);

  ServingOptions opts = fast_opts();
  opts.max_batch = 10;
  opts.max_wait_s = 10.0;  // deterministic batches of exactly 10
  ServingEngine server(*backend, opts);
  const std::size_t kN = 100;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.num_failed, 10u);  // exactly one batch
  EXPECT_EQ(s.num_requests, kN - 10u);
  EXPECT_EQ(s.fault_retries, 0u);  // permanent faults are not retried

  // The failed batch is the third: indices 20..29 resolved kFailed.
  for (const auto& rec : server.outcome_log()) {
    const bool in_failed_batch = rec.index >= 20 && rec.index < 30;
    EXPECT_EQ(rec.outcome, in_failed_batch ? RequestOutcome::kFailed
                                           : RequestOutcome::kServed)
        << "index " << rec.index;
  }
}

/// Shared scenario for the threaded modes, where fault placement depends
/// on scheduling: the invariant is the acceptance contract itself —
/// every request ends in a typed outcome (served or failed), nothing
/// deadlocks, and the engine shuts down cleanly.
void expect_typed_outcomes_under_faults(const ServingOptions& base,
                                        const std::string& key,
                                        std::uint64_t seed,
                                        BackendOptions bopts = {}) {
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend(key, model, ds, bopts);

  InjectorGuard g(seed);
  util::FaultPlan stage;
  stage.probability = 0.05;
  stage.transient = true;
  g.fi.arm(util::FaultSite::kStageExec, stage);
  util::FaultPlan handoff;
  handoff.probability = 0.03;
  handoff.transient = false;  // permanent mid-pipeline drops
  handoff.max_faults = 2;
  g.fi.arm(util::FaultSite::kChannelHandoff, handoff);

  ServingOptions opts = base;
  opts.fault_retries = 8;  // transients at p=0.05 virtually never exhaust
  opts.retry_backoff_s = 1e-6;
  const std::size_t kN = 300;
  {
    ServingEngine server(*backend, opts);
    for (std::size_t i = 0; i < kN; ++i) server.submit(i);
    server.drain();

    const auto s = server.stats();
    EXPECT_EQ(s.num_requests + s.num_failed, kN) << key << " seed " << seed;
    // Everything resolved exactly once.
    std::vector<bool> seen(kN, false);
    for (const auto& rec : server.outcome_log()) {
      ASSERT_LT(rec.index, kN);
      EXPECT_FALSE(seen[rec.index]) << "index resolved twice";
      seen[rec.index] = true;
      EXPECT_TRUE(rec.outcome == RequestOutcome::kServed ||
                  rec.outcome == RequestOutcome::kFailed);
    }
    for (std::size_t i = 0; i < kN; ++i) EXPECT_TRUE(seen[i]);
    server.stop();  // explicit clean shutdown under armed injector
  }
  // Post-mortem probe: the state machine survived the faults.
  EXPECT_NO_THROW({
    util::set_fault_injector(nullptr);
    backend->process_batch({kN, kN + 20});
  });
}

TEST(FaultInjection, SeededMatrixSerial) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull})
    expect_typed_outcomes_under_faults(fast_opts(), "cpu", seed);
}

TEST(FaultInjection, SeededMatrixPipelined) {
  ServingOptions opts = fast_opts();
  opts.pipelined = true;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull})
    expect_typed_outcomes_under_faults(opts, "cpu", seed);
}

TEST(FaultInjection, SeededMatrixPipelinedDeterministic) {
  ServingOptions opts = fast_opts();
  opts.pipelined = true;
  opts.deterministic = true;
  expect_typed_outcomes_under_faults(opts, "cpu", 7);
}

TEST(FaultInjection, SeededMatrixMultiWorker) {
  ServingOptions opts = fast_opts();
  opts.workers = 2;
  BackendOptions bopts;
  bopts.threads = 2;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull})
    expect_typed_outcomes_under_faults(opts, "sharded-cpu", seed, bopts);
}

TEST(FaultInjection, PipelinedPermanentStageFaultAbortsCleanly) {
  // One permanent fault lands on a stage mid-pipeline; the slot must be
  // aborted (pins released, ledger unwound) and every later batch must
  // still flow through all four stages.
  const auto ds = tiny_ds();
  const auto model = tiny_model(ds);
  auto backend = make_backend("cpu", model, ds);

  InjectorGuard g(5);
  util::FaultPlan plan;
  plan.transient = false;
  plan.max_faults = 1;
  plan.skip_first = 6;
  g.fi.arm(util::FaultSite::kStageExec, plan);

  ServingOptions opts = fast_opts();
  opts.pipelined = true;
  ServingEngine server(*backend, opts);
  const std::size_t kN = 200;
  for (std::size_t i = 0; i < kN; ++i) server.submit(i);
  server.drain();

  const auto s = server.stats();
  EXPECT_GE(s.num_failed, 1u);
  EXPECT_EQ(s.num_requests + s.num_failed, kN);
  EXPECT_FALSE(server.last_error().empty());
}

}  // namespace
}  // namespace tgnn::runtime
