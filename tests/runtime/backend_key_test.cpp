// The pure string layer under make_backend: resolve_backend_key and
// parse_memory_budget, exercised without any model or dataset — the same
// seam the TGNN_FUZZ harness (tests/fuzz/backend_key_fuzz.cpp) drives with
// arbitrary bytes. The hostile-input cases here pin the crashes the fuzzer
// would otherwise find: "nan" passing the sign check into a UB cast, and
// finite values a unit multiplier pushes past 2^64.
#include "runtime/backend.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace tgnn::runtime {
namespace {

constexpr std::size_t kGiB = std::size_t{1024} * 1024 * 1024;

TEST(ResolveBackendKey, BareKeyResolvesToDefaults) {
  const auto r = resolve_backend_key("cpu", kernels::Precision::kFp32, 0);
  EXPECT_EQ(r.base, "cpu");
  EXPECT_EQ(r.display, "cpu");
  EXPECT_EQ(r.precision, kernels::Precision::kFp32);
  EXPECT_FALSE(r.precision_requested);
  EXPECT_FALSE(r.mem_requested);
  EXPECT_EQ(r.memory_budget, 0u);
}

TEST(ResolveBackendKey, SuffixStackResolvesAllParts) {
  const auto r = resolve_backend_key("sharded-cpu:int8:mem=512m",
                                     kernels::Precision::kFp32, 0);
  EXPECT_EQ(r.base, "sharded-cpu");
  EXPECT_EQ(r.display, "sharded-cpu:int8");
  EXPECT_EQ(r.precision, kernels::Precision::kInt8);
  EXPECT_TRUE(r.precision_requested);
  EXPECT_TRUE(r.mem_requested);
  EXPECT_EQ(r.memory_budget, 512u * 1024 * 1024);
}

TEST(ResolveBackendKey, ExplicitFp32NormalizesDisplay) {
  const auto r = resolve_backend_key("cpu:fp32", kernels::Precision::kFp32, 0);
  EXPECT_EQ(r.display, "cpu");
  EXPECT_TRUE(r.precision_requested);
}

TEST(ResolveBackendKey, OptionsPrecisionCountsAsRequested) {
  const auto r = resolve_backend_key("cpu", kernels::Precision::kBf16, 0);
  EXPECT_EQ(r.precision, kernels::Precision::kBf16);
  EXPECT_TRUE(r.precision_requested);
  EXPECT_EQ(r.display, "cpu:bf16");
}

TEST(ResolveBackendKey, PercentBudgetAnchorsOnStateBytes) {
  const auto r =
      resolve_backend_key("cpu:mem=50%", kernels::Precision::kFp32, 4096);
  EXPECT_EQ(r.memory_budget, 2048u);
}

TEST(ResolveBackendKey, MalformedSuffixesThrow) {
  for (const std::string key :
       {"cpu:", "cpu:int4", "cpu:mem=", "cpu:mem=x", "cpu::int8",
        "cpu:mem=-1"})
    EXPECT_THROW(
        resolve_backend_key(key, kernels::Precision::kFp32, 0),
        std::invalid_argument)
        << key;
}

TEST(ParseMemoryBudget, UnitsAndPercentages) {
  EXPECT_EQ(parse_memory_budget("0", 0), 0u);
  EXPECT_EQ(parse_memory_budget("123", 0), 123u);
  EXPECT_EQ(parse_memory_budget("64k", 0), 64u * 1024);
  EXPECT_EQ(parse_memory_budget("512M", 0), 512u * 1024 * 1024);
  EXPECT_EQ(parse_memory_budget("2g", 0), 2 * kGiB);
  EXPECT_EQ(parse_memory_budget("25%", 1000), 250u);
  EXPECT_EQ(parse_memory_budget("1.5k", 0), 1536u);
}

TEST(ParseMemoryBudget, RejectsMalformedInput) {
  for (const std::string spec : {"", "x", "-1", "12q", "%", "m"})
    EXPECT_THROW(parse_memory_budget(spec, 1000), std::invalid_argument)
        << spec;
}

TEST(ParseMemoryBudget, RejectsNonFiniteAndOverflowingValues) {
  // "nan" is a valid stod parse and is not < 0, and 1e300 is finite until
  // the gigabyte multiplier lands — both previously reached the
  // float->size_t cast as UB. The parser must reject, not truncate.
  for (const std::string spec : {"nan", "inf", "1e400", "1e300g", "2e19"})
    EXPECT_THROW(parse_memory_budget(spec, 1000), std::invalid_argument)
        << spec;
  // The largest representable sizes still parse.
  EXPECT_EQ(parse_memory_budget("1e18", 0), std::size_t{1000000000000000000u});
}

}  // namespace
}  // namespace tgnn::runtime
