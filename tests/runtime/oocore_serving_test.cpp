// The out-of-core acceptance contract (ISSUE 7): a vertex state that only
// keeps ~10% of its rows resident — spilling the rest through the paged
// store — serves bit-identically to the all-resident tables on every
// engine-backed platform, and the hit/miss/spill counters surface in
// ServingStats. Paging may change *when* a row is in DRAM, never its bits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"

namespace tgnn::runtime {
namespace {

data::Dataset oo_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 400;
  dcfg.num_items = 300;
  dcfg.num_edges = 1200;
  dcfg.edge_dim = 6;
  dcfg.seed = 77;
  return data::make_synthetic(dcfg);
}

core::TgnModel oo_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 9);
}

/// Run the same batched stream through an all-resident and a 10%-budget
/// instance of `key`; every batch's embeddings must match bit-for-bit.
void expect_budgeted_matches_resident(const std::string& key,
                                      BackendOptions opts = {}) {
  const auto ds = oo_ds();
  const auto model = oo_model(ds);
  auto resident = make_backend(key, model, ds, opts);
  BackendOptions budgeted_opts = opts;
  budgeted_opts.memory_budget = core::RuntimeState::state_bytes(
                                    ds.graph.num_nodes(), model.config()) /
                                10;
  auto budgeted = make_backend(key, model, ds, budgeted_opts);

  for (const auto& r : ds.graph.fixed_size_batches(0, 900, 60)) {
    const auto a = resident->process_batch(r);
    const auto b = budgeted->process_batch(r);
    ASSERT_EQ(a.functional.nodes, b.functional.nodes) << key;
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                b.functional.embeddings),
              0.0f)
        << key;
  }
  const auto st = budgeted->store_stats();
  EXPECT_GT(st.misses, 0u) << key;      // the budget actually paged
  EXPECT_GT(st.evictions, 0u) << key;   // ...and evicted
  EXPECT_EQ(resident->store_stats().misses, 0u) << key;
}

TEST(OutOfCore, CpuBudgetedBitIdenticalToResident) {
  expect_budgeted_matches_resident("cpu");
}

TEST(OutOfCore, CpuMtBudgetedBitIdenticalToResident) {
  BackendOptions opts;
  opts.threads = 3;
  expect_budgeted_matches_resident("cpu-mt", opts);
}

TEST(OutOfCore, ShardedCpuBudgetedBitIdenticalToResident) {
  BackendOptions opts;
  opts.threads = 3;
  opts.shards = 8;
  expect_budgeted_matches_resident("sharded-cpu", opts);
}

TEST(OutOfCore, MemKeySuffixMatchesOptionsBudget) {
  // "cpu:mem=10%" is the CLI spelling of the options-level budget.
  const auto ds = oo_ds();
  const auto model = oo_model(ds);
  auto via_key = make_backend("cpu:mem=10%", model, ds);
  BackendOptions opts;
  opts.memory_budget = core::RuntimeState::state_bytes(ds.graph.num_nodes(),
                                                       model.config()) /
                       10;
  auto via_opts = make_backend("cpu", model, ds, opts);
  for (const auto& r : ds.graph.fixed_size_batches(0, 300, 60)) {
    const auto a = via_key->process_batch(r);
    const auto b = via_opts->process_batch(r);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings,
                                b.functional.embeddings),
              0.0f);
  }
  EXPECT_GT(via_key->store_stats().misses, 0u);
}

TEST(OutOfCore, DeterministicPipelinedBudgetedBitIdenticalToSerial) {
  // The hardest composition: budgeted store + staged pipeline with
  // cross-batch overlap and prefetch. Deterministic pipelining over the
  // paged store must leave exactly the state serial all-resident serving
  // leaves.
  const auto ds = oo_ds();
  const auto model = oo_model(ds);
  BackendOptions opts;
  opts.memory_budget = core::RuntimeState::state_bytes(ds.graph.num_nodes(),
                                                       model.config()) /
                       10;
  auto budgeted = make_backend("cpu", model, ds, opts);
  auto serial = make_backend("cpu", model, ds);

  ServingOptions sopts;
  sopts.max_batch = 60;
  sopts.max_wait_s = 10.0;
  sopts.pipelined = true;
  sopts.pipeline_depth = 4;
  sopts.deterministic = true;
  ServingStats stats;
  {
    ServingEngine server(*budgeted, sopts);
    for (std::size_t i = 0; i < 900; ++i) server.submit(i);
    server.drain();
    stats = server.stats();
  }
  run_stream(*serial, {0, 900}, 60);

  const graph::BatchRange next{900, 960};
  const auto a = budgeted->process_batch(next);
  const auto b = serial->process_batch(next);
  ASSERT_EQ(a.functional.nodes, b.functional.nodes);
  EXPECT_EQ(
      ops::max_abs_diff(a.functional.embeddings, b.functional.embeddings),
      0.0f);
  // Prefetch hooks fired: the scheduler announces footprints one stage
  // early, so some faults are absorbed before the batch runs.
  EXPECT_GT(stats.store.prefetch_loads, 0u);
}

TEST(OutOfCore, ServingStatsExposeStoreCounters) {
  const auto ds = oo_ds();
  const auto model = oo_model(ds);
  BackendOptions opts;
  opts.memory_budget = core::RuntimeState::state_bytes(ds.graph.num_nodes(),
                                                       model.config()) /
                       10;
  auto budgeted = make_backend("cpu", model, ds, opts);
  ServingOptions sopts;
  sopts.max_batch = 60;
  sopts.max_wait_s = 10.0;
  ServingEngine server(*budgeted, sopts);
  for (std::size_t i = 0; i < 600; ++i) server.submit(i);
  server.drain();
  const auto s = server.stats();
  EXPECT_GT(s.store.hits, 0u);
  EXPECT_GT(s.store.misses, 0u);
  EXPECT_GT(s.store.evictions, 0u);
  EXPECT_GT(s.store.hit_rate(), 0.0);
  EXPECT_LT(s.store.hit_rate(), 1.0);

  // All-resident serving reports clean zeros (and hit_rate 1.0 by
  // convention — nothing ever waited on a fault).
  auto resident = make_backend("cpu", model, ds);
  ServingEngine rserver(*resident, sopts);
  for (std::size_t i = 0; i < 600; ++i) rserver.submit(i);
  rserver.drain();
  const auto rs = rserver.stats();
  EXPECT_EQ(rs.store.hits + rs.store.misses, 0u);
  EXPECT_DOUBLE_EQ(rs.store.hit_rate(), 1.0);
}

TEST(OutOfCore, ModelledPlatformsRejectMemorySuffix) {
  const auto ds = oo_ds();
  const auto model = oo_model(ds);
  EXPECT_THROW(make_backend("fpga:mem=50%", model, ds),
               std::invalid_argument);
  EXPECT_THROW(make_backend("gpu-sim:mem=1m", model, ds),
               std::invalid_argument);
  EXPECT_THROW(make_backend("cpu:mem=bogus", model, ds),
               std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::runtime
