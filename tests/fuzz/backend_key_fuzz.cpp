// libFuzzer harness for the backend registry-key parser and the memory
// budget grammar — the strings users type straight into --backend /
// --memory_budget. The contract under fuzz: arbitrary input either
// resolves to a structurally sane ResolvedBackendKey or throws
// std::invalid_argument; nothing else (no UB casts, no other exception
// type, no crash).
//
// Build: cmake -DTGNN_FUZZ=ON (clang only); run: ./backend_key_fuzz
// [-max_total_time=30]. CI runs a 30-second smoke per harness.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/runtime/backend.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // First byte picks the anchoring state size (exercising the "%" unit's
  // division paths, including total == 0); the rest is the key.
  if (size == 0) return 0;
  const std::size_t totals[] = {0, 1, 4096, 1u << 30,
                                static_cast<std::size_t>(-1)};
  const std::size_t total = totals[data[0] % 5];
  const std::string key(reinterpret_cast<const char*>(data + 1), size - 1);

  try {
    const auto r = tgnn::runtime::resolve_backend_key(
        key, tgnn::kernels::Precision::kFp32, total);
    // Structural sanity of anything accepted.
    if (r.base.find(':') != std::string::npos) __builtin_trap();
    if (r.display.substr(0, r.base.size()) != r.base) __builtin_trap();
    if (r.mem_requested == false && r.memory_budget != 0) __builtin_trap();
  } catch (const std::invalid_argument&) {
    // The documented rejection path.
  }

  try {
    (void)tgnn::runtime::parse_memory_budget(key, total);
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
