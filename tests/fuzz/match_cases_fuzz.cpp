// libFuzzer harness for the bench CLI case matcher (bench/common.hpp
// match_cases) — the pure core behind every bench's --backend override.
// The input is split on newlines into alternating key/label pairs plus a
// final query string; the properties checked are the matcher's contract:
// an empty query is the identity, and every surviving case matched the
// query by key or label (and conversely nothing that matched was dropped).
//
// Build: cmake -DTGNN_FUZZ=ON (clang only); run: ./match_cases_fuzz
// [-max_total_time=30]. CI runs a 30-second smoke per harness.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::string> lines{""};
  for (std::size_t i = 0; i < size; ++i) {
    if (data[i] == '\n')
      lines.emplace_back();
    else
      lines.back().push_back(static_cast<char>(data[i]));
  }
  const std::string query = lines.back();
  lines.pop_back();

  std::vector<tgnn::bench::PlatformCase> cases;
  for (std::size_t i = 0; i + 1 < lines.size(); i += 2) {
    tgnn::bench::PlatformCase c;
    c.key = lines[i];
    c.label = lines[i + 1];
    cases.push_back(std::move(c));
  }
  const std::size_t n = cases.size();
  std::size_t expected = 0;
  for (const auto& c : cases)
    if (query.empty() || c.key == query || c.label == query) ++expected;

  const auto out = tgnn::bench::match_cases(std::move(cases), query);
  if (out.size() != expected) __builtin_trap();
  if (query.empty() && out.size() != n) __builtin_trap();
  for (const auto& c : out)
    if (!query.empty() && c.key != query && c.label != query)
      __builtin_trap();
  return 0;
}
