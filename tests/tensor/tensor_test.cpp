#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tgnn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, OneDimensionalIsColumn) {
  Tensor t(5);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 1u);
}

TEST(Tensor, FromInitializerList) {
  auto t = Tensor::from(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t(0, 0), 1.0f);
  EXPECT_EQ(t(0, 1), 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_EQ(t(1, 1), 4.0f);
}

TEST(Tensor, FromRejectsSizeMismatch) {
  EXPECT_THROW(Tensor::from(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, RowSpanViewsUnderlyingData) {
  Tensor t(2, 3);
  auto r1 = t.row(1);
  r1[2] = 7.0f;
  EXPECT_EQ(t(1, 2), 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  auto t = Tensor::from(2, 3, {1, 2, 3, 4, 5, 6});
  t.reshape(3, 2);
  EXPECT_EQ(t(2, 1), 6.0f);
  EXPECT_THROW(t.reshape(2, 2), std::invalid_argument);
}

TEST(Tensor, ElementwiseInPlace) {
  auto a = Tensor::from(1, 3, {1, 2, 3});
  auto b = Tensor::from(1, 3, {4, 5, 6});
  a += b;
  EXPECT_EQ(a(0, 2), 9.0f);
  a -= b;
  EXPECT_EQ(a(0, 0), 1.0f);
  a *= 2.0f;
  EXPECT_EQ(a(0, 1), 4.0f);
}

TEST(Tensor, ElementwiseRejectsShapeMismatch) {
  Tensor a(2, 2), b(1, 4);
  // Same total size is allowed (flat add); different size is not.
  Tensor c(3, 3);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Tensor, SumAndAbsMax) {
  auto t = Tensor::from(1, 4, {-5, 1, 2, 3});
  EXPECT_FLOAT_EQ(t.sum(), 1.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
}

TEST(Tensor, RandnStats) {
  Rng rng(1);
  auto t = Tensor::randn(100, 100, rng, 2.0f);
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) mean += t[i];
  mean /= static_cast<double>(t.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    var += (t[i] - mean) * (t[i] - mean);
  var /= static_cast<double>(t.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Tensor, XavierBounds) {
  Rng rng(1);
  auto t = Tensor::xavier(50, 70, rng);
  const float bound = std::sqrt(6.0f / (50 + 70));
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -bound);
    EXPECT_LE(t[i], bound);
  }
}

TEST(Tensor, FillAndZero) {
  Tensor t(2, 2);
  t.fill(3.0f);
  EXPECT_EQ(t.sum(), 12.0f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, ShapeStr) {
  Tensor t(2, 7);
  EXPECT_EQ(t.shape_str(), "[2, 7]");
}

}  // namespace
}  // namespace tgnn
