#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "util/rng.hpp"

namespace tgnn {
namespace {

/// Reference O(mnk) GEMM for cross-checking the optimized kernels.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = static_cast<float>(acc);
    }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatmulMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  const Tensor a = Tensor::randn(m, k, rng);
  const Tensor b = Tensor::randn(k, n, rng);
  EXPECT_LT(ops::max_abs_diff(ops::matmul(a, b), naive_matmul(a, b)), 1e-3f);
}

TEST_P(GemmShapes, MatmulNtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  const Tensor a = Tensor::randn(m, k, rng);
  const Tensor bt = Tensor::randn(n, k, rng);  // stored transposed
  EXPECT_LT(
      ops::max_abs_diff(ops::matmul_nt(a, bt), naive_matmul(a, transpose(bt))),
      1e-3f);
}

TEST_P(GemmShapes, MatmulTnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 3 + n);
  const Tensor at = Tensor::randn(k, m, rng);  // stored transposed
  const Tensor b = Tensor::randn(k, n, rng);
  EXPECT_LT(
      ops::max_abs_diff(ops::matmul_tn(at, b), naive_matmul(transpose(at), b)),
      1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 2},
                      std::tuple{8, 8, 8}, std::tuple{17, 31, 13},
                      std::tuple{64, 100, 72}, std::tuple{100, 472, 100},
                      std::tuple{1, 372, 100}, std::tuple{128, 64, 1}));

TEST(Ops, MatmulRejectsBadShapes) {
  Tensor a(2, 3), b(4, 2);
  EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(Ops, MatmulAccAccumulates) {
  Rng rng(5);
  const Tensor a = Tensor::randn(4, 6, rng);
  const Tensor b = Tensor::randn(6, 5, rng);
  Tensor c = ops::matmul(a, b);
  ops::matmul_acc(a, b, c);
  Tensor twice = ops::matmul(a, b);
  twice *= 2.0f;
  EXPECT_LT(ops::max_abs_diff(c, twice), 1e-4f);
}

TEST(Ops, AffineAddsBias) {
  Rng rng(5);
  const Tensor x = Tensor::randn(3, 4, rng);
  const Tensor w = Tensor::randn(2, 4, rng);
  Tensor b(2);
  b[0] = 1.0f;
  b[1] = -2.0f;
  const Tensor y = ops::affine(x, w, b);
  const Tensor ref = ops::matmul_nt(x, w);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y(i, 0), ref(i, 0) + 1.0f, 1e-5f);
    EXPECT_NEAR(y(i, 1), ref(i, 1) - 2.0f, 1e-5f);
  }
}

TEST(Ops, SigmoidRangeAndValues) {
  auto x = Tensor::from(1, 3, {0.0f, 100.0f, -100.0f});
  const Tensor y = ops::sigmoid(x);
  EXPECT_NEAR(y(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(y(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(y(0, 2), 0.0f, 1e-6f);
}

TEST(Ops, TanhMatchesStd) {
  auto x = Tensor::from(1, 2, {0.5f, -1.25f});
  const Tensor y = ops::tanh(x);
  EXPECT_NEAR(y(0, 0), std::tanh(0.5f), 1e-6f);
  EXPECT_NEAR(y(0, 1), std::tanh(-1.25f), 1e-6f);
}

TEST(Ops, ReluClampsNegatives) {
  auto x = Tensor::from(1, 3, {-1.0f, 0.0f, 2.0f});
  const Tensor y = ops::relu(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 0.0f);
  EXPECT_EQ(y(0, 2), 2.0f);
}

TEST(Ops, SoftmaxRowsSumToOneAndOrder) {
  Rng rng(3);
  const Tensor x = Tensor::randn(5, 9, rng);
  const Tensor y = ops::softmax_rows(x);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float total = 0.0f;
    for (std::size_t j = 0; j < y.cols(); ++j) {
      EXPECT_GT(y(i, j), 0.0f);
      total += y(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  // Monotone: larger logit -> larger probability.
  for (std::size_t j = 1; j < y.cols(); ++j)
    EXPECT_EQ(x(0, j) > x(0, 0), y(0, j) > y(0, 0));
}

TEST(Ops, SoftmaxHandlesLargeLogits) {
  auto x = Tensor::from(1, 2, {1000.0f, 999.0f});
  const Tensor y = ops::softmax_rows(x);
  EXPECT_FALSE(std::isnan(y(0, 0)));
  EXPECT_GT(y(0, 0), y(0, 1));
}

TEST(Ops, ConcatAndSliceRoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::randn(3, 2, rng);
  const Tensor b = Tensor::randn(3, 5, rng);
  const Tensor cat = ops::concat_cols({&a, &b});
  ASSERT_EQ(cat.cols(), 7u);
  EXPECT_LT(ops::max_abs_diff(ops::slice_cols(cat, 0, 2), a), 1e-7f);
  EXPECT_LT(ops::max_abs_diff(ops::slice_cols(cat, 2, 7), b), 1e-7f);
}

TEST(Ops, ConcatRejectsRowMismatch) {
  Tensor a(2, 2), b(3, 2);
  EXPECT_THROW(ops::concat_cols({&a, &b}), std::invalid_argument);
}

TEST(Ops, ColsumMatchesManual) {
  auto x = Tensor::from(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor s = ops::colsum(x);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(s[1], 7.0f);
  EXPECT_EQ(s[2], 9.0f);
}

TEST(Ops, HadamardAndAddSub) {
  auto a = Tensor::from(1, 2, {2, 3});
  auto b = Tensor::from(1, 2, {4, 5});
  EXPECT_EQ(ops::hadamard(a, b)(0, 1), 15.0f);
  EXPECT_EQ(ops::add(a, b)(0, 0), 6.0f);
  EXPECT_EQ(ops::sub(b, a)(0, 1), 2.0f);
}

TEST(Ops, ReluInplaceMatchesRelu) {
  auto x = Tensor::from(1, 4, {-2.0f, 0.0f, 0.5f, -0.25f});
  Tensor y = x;
  ops::relu_inplace(y);
  EXPECT_LT(ops::max_abs_diff(ops::relu(x), y), 1e-9f);
}

TEST(Ops, SoftmaxAllMaskedRowFallsBackToUniform) {
  // Regression: an all-(-inf) row (every slot masked) used to produce
  // exp(-inf - -inf) = NaN weights that silently poisoned vertex memory.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> v(4, -inf);
  ops::softmax_span(v);
  for (float f : v) EXPECT_FLOAT_EQ(f, 0.25f);
}

TEST(Ops, SoftmaxNonFiniteRowFallsBackToUniform) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const float poison : {inf, nan}) {
    std::vector<float> v = {0.5f, poison, -1.0f};
    ops::softmax_span(v);
    float total = 0.0f;
    for (float f : v) {
      EXPECT_TRUE(std::isfinite(f));
      total += f;
    }
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
}

TEST(Ops, SoftmaxPartiallyMaskedRowStaysExact) {
  // A single -inf among finite logits must still get exactly zero weight.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> v = {1.0f, -inf, 1.0f};
  ops::softmax_span(v);
  EXPECT_FLOAT_EQ(v[0], 0.5f);
  EXPECT_FLOAT_EQ(v[1], 0.0f);
  EXPECT_FLOAT_EQ(v[2], 0.5f);
}

}  // namespace
}  // namespace tgnn
