#!/usr/bin/env bash
# Negative compile tests for the clang thread-safety annotations (see
# thread_safety_neg.cpp). Case 0 (correct locking) must compile; cases 1-3
# (one deleted/leaked acquisition each) must NOT. Both directions are
# asserted, so this fails CI either when the analysis misses a violation
# (annotation rot) or when it rejects correct code.
#
# Usage: CXX=clang++ tests/static/run_thread_safety_neg.sh
set -u

CXX=${CXX:-clang++}
HERE=$(cd "$(dirname "$0")" && pwd)
REPO=$(cd "${HERE}/../.." && pwd)
FLAGS="-std=c++20 -fsyntax-only -I${REPO}/src -Wthread-safety -Werror=thread-safety"

if ! ${CXX} --version 2>/dev/null | grep -qi clang; then
  echo "error: ${CXX} is not clang (thread-safety analysis unavailable)" >&2
  exit 2
fi

compile_case() {
  # shellcheck disable=SC2086
  ${CXX} ${FLAGS} -DTGNN_TS_NEG_CASE="$1" "${HERE}/thread_safety_neg.cpp"
}

fail=0
if ! compile_case 0; then
  echo "FAIL: case 0 (correct locking) did not compile" >&2
  fail=1
else
  echo "ok: case 0 (correct locking) compiles"
fi

for c in 1 2 3; do
  if compile_case "$c" 2>/dev/null; then
    echo "FAIL: case $c (deleted/leaked acquisition) compiled cleanly" >&2
    fail=1
  else
    echo "ok: case $c rejected by -Werror=thread-safety"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "thread-safety negative compile tests FAILED" >&2
  exit 1
fi
echo "thread-safety negative compile tests passed"
