// Negative compile tests for the thread-safety annotations: this TU is
// compiled repeatedly by run_thread_safety_neg.sh with clang's
// -Werror=thread-safety and different -DTGNN_TS_NEG_CASE values. Case 0 is
// the correct locking discipline and MUST compile; every other case
// deletes exactly one acquisition (or leaks one) and MUST fail — proving
// the analysis would catch the corresponding real regression instead of
// silently accepting it. The driver asserts both directions, so a rotted
// annotation (one that stops flagging anything) fails CI the same way a
// locking bug would.
//
// Never add this file to a CMake target: gcc compiles the annotations as
// no-ops and the violation cases would "pass".
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#ifndef TGNN_TS_NEG_CASE
#define TGNN_TS_NEG_CASE 0
#endif

namespace {

// A miniature of the engine's shape: a guarded counter, a REQUIRES
// helper, and an EXCLUDES public method.
class Ledger {
 public:
  void add_locked(int d) TGNN_EXCLUDES(mu_) {
    tgnn::util::MutexLock lk(mu_);
    add_unlocked(d);
  }

  void add_requires(int d) TGNN_REQUIRES(mu_) { add_unlocked(d); }

  int total() TGNN_EXCLUDES(mu_) {
    tgnn::util::MutexLock lk(mu_);
    return n_;
  }

  tgnn::util::Mutex mu_;

 private:
  void add_unlocked(int d) TGNN_REQUIRES(mu_) { n_ += d; }

  int n_ TGNN_GUARDED_BY(mu_) = 0;
};

int drive() {
  Ledger ledger;

#if TGNN_TS_NEG_CASE == 0
  // Correct discipline: acquire before every guarded touch.
  ledger.add_locked(1);
  {
    tgnn::util::MutexLock lk(ledger.mu_);
    ledger.add_requires(2);
  }
#elif TGNN_TS_NEG_CASE == 1
  // VIOLATION: the TGNN_REQUIRES-guarded call with the lock acquisition
  // removed — the regression the annotations exist to catch.
  ledger.add_requires(2);
#elif TGNN_TS_NEG_CASE == 2
  // VIOLATION: a leaked acquisition — lock() with no matching unlock on
  // any path out of the function.
  ledger.mu_.lock();
  ledger.add_requires(1);
  return 0;
#elif TGNN_TS_NEG_CASE == 3
  // VIOLATION: re-acquiring a capability already held (self-deadlock with
  // a non-recursive mutex).
  tgnn::util::MutexLock lk(ledger.mu_);
  ledger.add_locked(1);
#else
#error "unknown TGNN_TS_NEG_CASE"
#endif
  return ledger.total();
}

}  // namespace

int main() { return drive(); }
