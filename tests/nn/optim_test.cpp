#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tgnn::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - target||^2, grad = w - target.
  Parameter p("w", Tensor(1, 4));
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  ParamStore store;
  store.add(&p);
  Adam::Options opts;
  opts.lr = 0.05;
  Adam adam(store, opts);
  for (int step = 0; step < 2000; ++step) {
    store.zero_grad();
    for (int i = 0; i < 4; ++i) p.grad[i] = p.value[i] - target[i];
    adam.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], target[i], 1e-2f);
}

TEST(Adam, StepCountIncrements) {
  Parameter p("w", Tensor(1, 1));
  ParamStore store;
  store.add(&p);
  Adam adam(store);
  EXPECT_EQ(adam.steps(), 0u);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps(), 2u);
}

TEST(Adam, FirstStepMovesByRoughlyLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter p("w", Tensor(1, 1));
  ParamStore store;
  store.add(&p);
  Adam::Options opts;
  opts.lr = 0.1;
  Adam adam(store, opts);
  p.grad[0] = 42.0f;
  adam.step();
  EXPECT_NEAR(p.value[0], -0.1f, 1e-3f);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Parameter p("w", Tensor(1, 1));
  p.value[0] = 5.0f;
  ParamStore store;
  store.add(&p);
  Adam::Options opts;
  opts.lr = 0.05;
  opts.weight_decay = 1.0;
  Adam adam(store, opts);
  for (int i = 0; i < 500; ++i) {
    store.zero_grad();
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 0.0f, 0.1f);
}

TEST(ParamStore, CountAndZeroGrad) {
  Parameter a("a", Tensor(2, 3)), b("b", Tensor(4));
  ParamStore store;
  store.add(&a);
  store.add(&b);
  EXPECT_EQ(store.count(), 10u);
  a.grad.fill(1.0f);
  store.zero_grad();
  EXPECT_EQ(a.grad.sum(), 0.0f);
}

TEST(ParamStore, ClipGradNorm) {
  Parameter p("p", Tensor(1, 4));
  p.grad.fill(3.0f);  // norm = 6
  ParamStore store;
  store.add(&p);
  const double before = store.clip_grad_norm(3.0);
  EXPECT_NEAR(before, 6.0, 1e-5);
  double after = 0.0;
  for (std::size_t i = 0; i < 4; ++i) after += p.grad[i] * p.grad[i];
  EXPECT_NEAR(std::sqrt(after), 3.0, 1e-4);
}

TEST(ParamStore, ClipNoOpBelowThreshold) {
  Parameter p("p", Tensor(1, 2));
  p.grad[0] = 0.3f;
  ParamStore store;
  store.add(&p);
  store.clip_grad_norm(10.0);
  EXPECT_FLOAT_EQ(p.grad[0], 0.3f);
}

}  // namespace
}  // namespace tgnn::nn
