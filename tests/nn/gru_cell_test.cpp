#include "nn/gru_cell.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace tgnn::nn {
namespace {

TEST(GruCell, OutputShape) {
  Rng rng(1);
  GruCell gru("g", 8, 5, rng);
  const Tensor x = Tensor::randn(3, 8, rng);
  const Tensor h = Tensor::randn(3, 5, rng);
  const Tensor out = gru.forward(x, h);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 5u);
}

TEST(GruCell, UpdateGateSaturatedKeepsHiddenState) {
  // Force z ~= 1 by a huge update-gate bias: s' = z*h + (1-z)*n -> h.
  Rng rng(2);
  GruCell gru("g", 4, 3, rng);
  gru.b_iz.value.fill(50.0f);
  const Tensor x = Tensor::randn(2, 4, rng);
  const Tensor h = Tensor::randn(2, 3, rng);
  const Tensor out = gru.forward(x, h);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], h[i], 1e-4f);
}

TEST(GruCell, UpdateGateZeroTakesCandidate) {
  // z ~= 0: s' = n = tanh(W_in x + b_in + r*(W_hn h + b_hn)).
  Rng rng(3);
  GruCell gru("g", 4, 3, rng);
  gru.b_iz.value.fill(-50.0f);
  const Tensor x = Tensor::randn(1, 4, rng);
  const Tensor h = Tensor::randn(1, 3, rng);
  GruCell::Cache cache;
  const Tensor out = gru.forward(x, h, &cache);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], cache.n[i], 1e-4f);
}

TEST(GruCell, OutputBounded) {
  // s' is a convex combination of h and tanh(.) so |s'| <= max(|h|, 1).
  Rng rng(4);
  GruCell gru("g", 6, 4, rng);
  const Tensor x = Tensor::randn(5, 6, rng, 3.0f);
  const Tensor h = Tensor::randn(5, 4, rng, 0.5f);
  const Tensor out = gru.forward(x, h);
  const float bound = std::max(1.0f, h.abs_max()) + 1e-5f;
  EXPECT_LE(out.abs_max(), bound);
}

TEST(GruCell, GradCheckParameters) {
  Rng rng(5);
  GruCell gru("g", 5, 4, rng);
  const Tensor x = Tensor::randn(3, 5, rng);
  const Tensor h = Tensor::randn(3, 4, rng);

  auto loss = [&]() {
    const Tensor out = gru.forward(x, h);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) s += 0.5 * out[i] * out[i];
    return s;
  };
  ParamStore store;
  store.add_all(gru.parameters());
  store.zero_grad();
  GruCell::Cache cache;
  const Tensor out = gru.forward(x, h, &cache);
  gru.backward(cache, out);  // dL/dout = out for 0.5*||out||^2
  // eps = 1e-2: the forward pass is float32, so central differences need a
  // step large enough to dominate rounding noise in the loss.
  const auto res = check_gradients(store, loss, 1e-2);
  EXPECT_LT(res.max_rel_err, 3e-2) << res.worst_param;
}

TEST(GruCell, GradCheckInputs) {
  Rng rng(6);
  GruCell gru("g", 4, 3, rng);
  Tensor x = Tensor::randn(2, 4, rng);
  Tensor h = Tensor::randn(2, 3, rng);

  GruCell::Cache cache;
  const Tensor out = gru.forward(x, h, &cache);
  const auto g = gru.backward(cache, out);

  auto loss_at = [&](const Tensor& xx, const Tensor& hh) {
    const Tensor o = gru.forward(xx, hh);
    double s = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) s += 0.5 * o[i] * o[i];
    return s;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); i += 3) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double numeric = (loss_at(xp, h) - loss_at(xm, h)) / (2 * eps);
    EXPECT_NEAR(numeric, g.dx[i], 3e-2 * std::max(1.0, std::fabs(numeric)));
  }
  for (std::size_t i = 0; i < h.size(); i += 2) {
    Tensor hp = h, hm = h;
    hp[i] += static_cast<float>(eps);
    hm[i] -= static_cast<float>(eps);
    const double numeric = (loss_at(x, hp) - loss_at(x, hm)) / (2 * eps);
    EXPECT_NEAR(numeric, g.dh[i], 3e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(GruCell, MacsFormula) {
  Rng rng(7);
  GruCell gru("g", 10, 6, rng);
  EXPECT_EQ(gru.macs(4), 4u * 3u * (10u + 6u) * 6u);
}

}  // namespace
}  // namespace tgnn::nn
