#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace tgnn::nn {
namespace {

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear l("l", 4, 3, rng);
  l.w.value.zero();
  l.b.value[1] = 2.5f;
  const Tensor y = l.forward(Tensor(2, 4));
  ASSERT_EQ(y.rows(), 2u);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_EQ(y(0, 1), 2.5f);
  EXPECT_EQ(y(1, 0), 0.0f);
}

TEST(Linear, MacsCount) {
  Rng rng(1);
  Linear l("l", 10, 7, rng);
  EXPECT_EQ(l.macs(5), 5u * 10u * 7u);
}

TEST(Linear, GradCheckParametersAndInput) {
  Rng rng(2);
  Linear l("l", 6, 4, rng);
  const Tensor x = Tensor::randn(3, 6, rng);

  // Scalar loss: sum of squares of outputs.
  auto loss = [&]() {
    const Tensor y = l.forward(x);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += 0.5 * y[i] * y[i];
    return s;
  };
  // Analytic: dY = Y.
  ParamStore store;
  store.add_all(l.parameters());
  store.zero_grad();
  const Tensor y = l.forward(x);
  const Tensor dx = l.backward(x, y);
  const auto res = check_gradients(store, loss, 1e-3);
  EXPECT_LT(res.max_rel_err, 2e-2) << res.worst_param;

  // Input gradient: perturb x directly.
  for (std::size_t trial = 0; trial < 10; ++trial) {
    Tensor xp = x;
    const std::size_t i = trial * 17 % x.size();
    const float eps = 1e-3f;
    xp[i] += eps;
    const Tensor yp = l.forward(xp);
    double lp = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) lp += 0.5 * yp[j] * yp[j];
    xp[i] -= 2 * eps;
    const Tensor ym = l.forward(xp);
    double lm = 0.0;
    for (std::size_t j = 0; j < ym.size(); ++j) lm += 0.5 * ym[j] * ym[j];
    const double numeric = (lp - lm) / (2e-3);
    EXPECT_NEAR(numeric, dx[i], 5e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(Linear, BackwardAccumulatesAcrossCalls) {
  Rng rng(3);
  Linear l("l", 2, 2, rng);
  const Tensor x = Tensor::randn(1, 2, rng);
  const Tensor dy = Tensor::randn(1, 2, rng);
  l.backward(x, dy);
  const Tensor g1 = l.w.grad;
  l.backward(x, dy);
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(l.w.grad[i], 2.0f * g1[i], 1e-6f);
}

}  // namespace
}  // namespace tgnn::nn
