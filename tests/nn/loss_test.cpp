#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tgnn::nn {
namespace {

TEST(BceWithLogits, MatchesClosedForm) {
  auto logits = Tensor::from(2, 1, {0.0f, 2.0f});
  auto targets = Tensor::from(2, 1, {1.0f, 0.0f});
  const auto res = bce_with_logits(logits, targets);
  // -log(sigmoid(0)) = log 2; -log(1 - sigmoid(2)) = log(1 + e^2)... = 2 + log(1+e^-2)
  const double expected =
      0.5 * (std::log(2.0) + (2.0 + std::log1p(std::exp(-2.0))));
  EXPECT_NEAR(res.value, expected, 1e-6);
}

TEST(BceWithLogits, GradientIsSigmoidMinusTarget) {
  auto logits = Tensor::from(1, 1, {1.5f});
  auto targets = Tensor::from(1, 1, {1.0f});
  const auto res = bce_with_logits(logits, targets);
  EXPECT_NEAR(res.grad(0, 0), stable_sigmoid(1.5) - 1.0, 1e-6);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  auto logits = Tensor::from(2, 1, {500.0f, -500.0f});
  auto targets = Tensor::from(2, 1, {1.0f, 0.0f});
  const auto res = bce_with_logits(logits, targets);
  EXPECT_FALSE(std::isnan(res.value));
  EXPECT_NEAR(res.value, 0.0, 1e-6);
}

TEST(BceWithLogits, NumericGradient) {
  Rng rng(1);
  Tensor logits = Tensor::randn(5, 1, rng);
  Tensor targets(5, 1);
  for (int i = 0; i < 5; ++i) targets[i] = i % 2 ? 1.0f : 0.0f;
  const auto res = bce_with_logits(logits, targets);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double numeric =
        (bce_with_logits(lp, targets).value - bce_with_logits(lm, targets).value) /
        (2 * eps);
    EXPECT_NEAR(numeric, res.grad[i], 1e-3);
  }
}

TEST(SoftCrossEntropy, ZeroGradientWhenStudentEqualsTeacher) {
  Rng rng(2);
  const Tensor logits = Tensor::randn(3, 6, rng);
  const auto res = soft_cross_entropy(logits, logits, 1.0);
  for (std::size_t i = 0; i < res.grad.size(); ++i)
    EXPECT_NEAR(res.grad[i], 0.0f, 1e-6f);
}

TEST(SoftCrossEntropy, ValueIsTeacherEntropyAtMatch) {
  // When student == teacher, loss = entropy of softmax(teacher/T) >= 0.
  Rng rng(3);
  const Tensor logits = Tensor::randn(2, 4, rng);
  const auto res = soft_cross_entropy(logits, logits, 1.0);
  EXPECT_GT(res.value, 0.0);
  EXPECT_LT(res.value, std::log(4.0) + 1e-6);
}

TEST(SoftCrossEntropy, NumericGradient) {
  Rng rng(4);
  Tensor student = Tensor::randn(4, 5, rng);
  const Tensor teacher = Tensor::randn(4, 5, rng);
  const double T = 2.0;
  const auto res = soft_cross_entropy(student, teacher, T);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < student.size(); i += 2) {
    Tensor sp = student, sm = student;
    sp[i] += static_cast<float>(eps);
    sm[i] -= static_cast<float>(eps);
    const double numeric = (soft_cross_entropy(sp, teacher, T).value -
                            soft_cross_entropy(sm, teacher, T).value) /
                           (2 * eps);
    EXPECT_NEAR(numeric, res.grad[i], 5e-3);
  }
}

TEST(SoftCrossEntropy, TemperatureSoftensGradients) {
  Rng rng(5);
  const Tensor student = Tensor::randn(2, 4, rng);
  const Tensor teacher = Tensor::randn(2, 4, rng);
  const auto sharp = soft_cross_entropy(student, teacher, 0.5);
  const auto soft = soft_cross_entropy(student, teacher, 4.0);
  EXPECT_GT(sharp.grad.abs_max(), soft.grad.abs_max());
}

TEST(SoftCrossEntropy, RejectsBadInput) {
  Tensor a(2, 3), b(2, 4);
  EXPECT_THROW(soft_cross_entropy(a, b, 1.0), std::invalid_argument);
  Tensor c(2, 3);
  EXPECT_THROW(soft_cross_entropy(a, c, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::nn
