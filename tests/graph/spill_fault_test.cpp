// Spill-I/O faults against the out-of-core vertex store: transient faults
// are absorbed by the store's bounded internal retry (counted in
// io_retries), permanent faults surface as typed errors that leave every
// table consistent and never lose the only copy of a dirty page.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/vertex_store.hpp"
#include "util/fault_injector.hpp"

namespace tgnn::graph {
namespace {

struct InjectorGuard {
  explicit InjectorGuard(std::uint64_t seed) : fi(seed) {
    util::set_fault_injector(&fi);
  }
  ~InjectorGuard() { util::set_fault_injector(nullptr); }
  util::FaultInjector fi;
};

void fill_row(VertexStore& s, std::size_t r, std::uint32_t salt) {
  std::byte* p = s.row_mut(r);
  for (std::size_t i = 0; i < s.row_bytes(); ++i)
    p[i] = static_cast<std::byte>((r * 31 + salt + i) & 0xff);
}

bool check_row(const VertexStore& s, std::size_t r, std::uint32_t salt) {
  const std::byte* p = s.row(r);
  for (std::size_t i = 0; i < s.row_bytes(); ++i)
    if (p[i] != static_cast<std::byte>((r * 31 + salt + i) & 0xff))
      return false;
  return true;
}

VertexStoreOptions small_opts(std::size_t budget_pages) {
  VertexStoreOptions o;
  o.rows_per_page = 8;
  o.budget_bytes = budget_pages * 8 * 64;
  o.writeback_batch = 4;
  return o;
}

/// Dirty one row in each of pages 0..3 through the pin protocol. With 4
/// frames and writeback_batch 4, the 4th unpin fills the write-back queue
/// and triggers a flush of all four pages — a deterministic spill-write
/// burst to aim fault plans at.
void dirty_four_pages(VertexStore& s) {
  for (std::uint32_t p = 0; p < 4; ++p) {
    const std::vector<NodeId> rows = {static_cast<NodeId>(p * 8)};
    s.pin_rows(rows);
    fill_row(s, rows[0], 21);
    s.unpin_rows(rows);
  }
}

TEST(SpillFault, TransientWriteFaultsAreRetriedAndCounted) {
  VertexStore s(256, 64, small_opts(4));
  ASSERT_TRUE(s.out_of_core());

  InjectorGuard g(17);
  util::FaultPlan plan;  // probability 1, transient
  plan.max_faults = 2;
  g.fi.arm(util::FaultSite::kSpillWrite, plan);

  dirty_four_pages(s);  // flush at the 4th unpin eats both faults

  const auto st = s.stats();
  EXPECT_EQ(st.io_retries, 2u);
  EXPECT_EQ(st.io_failures, 0u);
  EXPECT_EQ(st.spill_page_writes, 4u);  // every page still spilled
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_TRUE(check_row(s, p * 8, 21));
  s.check_invariants();
}

TEST(SpillFault, TransientOpenFaultIsAbsorbed) {
  // The very first spill write lazily creates the file; transient faults
  // at the open site ride the same retry loop as the write itself.
  VertexStore s(256, 64, small_opts(4));
  InjectorGuard g(23);
  util::FaultPlan plan;
  plan.max_faults = 2;
  g.fi.arm(util::FaultSite::kSpillOpen, plan);

  dirty_four_pages(s);

  const auto st = s.stats();
  EXPECT_EQ(st.io_retries, 2u);
  EXPECT_EQ(st.io_failures, 0u);
  EXPECT_EQ(st.spill_page_writes, 4u);
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_TRUE(check_row(s, p * 8, 21));
}

TEST(SpillFault, PermanentWriteFaultAtFlushLosesNoData) {
  VertexStore s(256, 64, small_opts(4));

  InjectorGuard g(29);
  util::FaultPlan plan;
  plan.transient = false;
  plan.max_faults = 1;
  g.fi.arm(util::FaultSite::kSpillWrite, plan);

  // The flush's first write fails permanently: the entry is re-queued,
  // the drain stops, and — crucially — the caller's unpin does NOT throw.
  dirty_four_pages(s);

  auto st = s.stats();
  EXPECT_EQ(st.io_failures, 1u);
  EXPECT_EQ(st.io_retries, 0u);  // permanent faults are not retried
  EXPECT_EQ(st.spill_page_writes, 0u);  // drain aborted at the first entry
  // The pages stayed resident and dirty: nothing was lost.
  for (std::uint32_t p = 0; p < 4; ++p)
    EXPECT_TRUE(check_row(s, p * 8, 21));
  s.check_invariants();

  // Once the fault clears, churning the store drains the re-queued entry
  // and every row — including the four that failed to flush — survives a
  // full spill round trip.
  g.fi.disarm(util::FaultSite::kSpillWrite);
  for (std::size_t r = 0; r < 256; ++r) fill_row(s, r, 21);
  for (std::size_t r = 0; r < 256; ++r) EXPECT_TRUE(check_row(s, r, 21));
  st = s.stats();
  EXPECT_GT(st.spill_page_writes, 0u);
  s.check_invariants();
}

TEST(SpillFault, PermanentReadFaultRollsBackPinsAndIsRecoverable) {
  VertexStore s(256, 64, small_opts(4));
  // Push every page through the spill file, then re-read so the resident
  // frames are clean (evicting them later needs no write).
  for (std::size_t r = 0; r < 256; ++r) fill_row(s, r, 13);
  for (std::size_t r = 0; r < 256; ++r) ASSERT_TRUE(check_row(s, r, 13));

  InjectorGuard g(31);
  util::FaultPlan plan;
  plan.transient = false;
  plan.max_faults = 1;
  g.fi.arm(util::FaultSite::kSpillRead, plan);

  // Rows 0 and 8 live on two long-evicted pages: the first spill read
  // faults permanently, and the pin call must roll back to "no pins held"
  // (strong guarantee) with every table still consistent.
  const std::vector<NodeId> cold = {0, 8};
  EXPECT_THROW(s.pin_rows(cold), util::InjectedFault);
  s.check_invariants();

  // The fault plan is exhausted: the same pin now succeeds and the data
  // was never corrupted.
  s.pin_rows(cold);
  EXPECT_TRUE(check_row(s, 0, 13));
  EXPECT_TRUE(check_row(s, 8, 13));
  s.unpin_rows(cold);
  for (std::size_t r = 0; r < 256; ++r) EXPECT_TRUE(check_row(s, r, 13));
  s.check_invariants();
}

TEST(SpillFault, ExhaustedTransientReadRetriesSurfaceTyped) {
  // A transient fault that never clears: the store's bounded retry (3
  // attempts) gives up and rethrows rather than spinning forever.
  VertexStore s(256, 64, small_opts(4));
  for (std::size_t r = 0; r < 256; ++r) fill_row(s, r, 4);
  for (std::size_t r = 0; r < 256; ++r) ASSERT_TRUE(check_row(s, r, 4));

  InjectorGuard g(37);
  g.fi.arm(util::FaultSite::kSpillRead, util::FaultPlan{});  // p=1, no cap

  const std::vector<NodeId> cold = {0};
  EXPECT_THROW(s.pin_rows(cold), util::InjectedFault);
  EXPECT_EQ(s.stats().io_retries, 3u);
  s.check_invariants();

  g.fi.disarm(util::FaultSite::kSpillRead);
  s.pin_rows(cold);
  EXPECT_TRUE(check_row(s, 0, 4));
  s.unpin_rows(cold);
}

}  // namespace
}  // namespace tgnn::graph
