#include "graph/shard_map.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "graph/shard_view.hpp"

namespace tgnn::graph {
namespace {

TEST(ShardMap, RoutingIsStableAndInRange) {
  ShardMap map(8);
  EXPECT_EQ(map.num_shards(), 8u);
  for (NodeId v = 0; v < 1000; ++v) {
    const auto s = map.shard_of(v);
    EXPECT_LT(s, 8u);
    // Stable: same vertex, same shard, every time (the routing rule other
    // components — locks, views, future replicas — must agree on).
    EXPECT_EQ(s, map.shard_of(v));
    EXPECT_EQ(s, ShardMap(8).shard_of(v));
  }
  // The mix function itself is pinned: a silent change would re-route every
  // vertex of every persisted deployment.
  EXPECT_EQ(ShardMap::mix(0), ShardMap::mix(0));
  EXPECT_NE(ShardMap::mix(0), ShardMap::mix(1));
}

TEST(ShardMap, SingleShardDegeneratesAndZeroThrows) {
  ShardMap one(1);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(one.shard_of(v), 0u);
  EXPECT_THROW(ShardMap(0), std::invalid_argument);
}

TEST(ShardMap, RoutingIsRoughlyBalanced) {
  const std::size_t shards = 16;
  ShardMap map(shards);
  std::vector<std::size_t> counts(shards, 0);
  const NodeId n = 16000;
  for (NodeId v = 0; v < n; ++v) ++counts[map.shard_of(v)];
  // Uniform expectation 1000 per shard; a good mix stays well within 2x.
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GT(counts[s], n / shards / 2) << "shard " << s;
    EXPECT_LT(counts[s], n / shards * 2) << "shard " << s;
  }
}

TEST(ShardView, MutationOutsideOwnedShardThrows) {
  ShardMap map(4);
  VertexMemory mem(64, 3);
  VertexMailbox box(64, 5);
  NeighborTable table(64, 4);

  VertexMemoryShard mview(mem, map, 0);
  VertexMailboxShard bview(box, map, 0);
  NeighborTableShard tview(table, map, 0);

  // Find one vertex inside and one outside shard 0.
  NodeId in = 0, out = 0;
  for (NodeId v = 0; v < 64; ++v) (map.shard_of(v) == 0 ? in : out) = v;
  ASSERT_TRUE(mview.owns(in));
  ASSERT_FALSE(mview.owns(out));

  const std::vector<float> row3(3, 1.5f), row5(5, 2.5f);
  mview.set(in, row3, 10.0);
  EXPECT_EQ(mem.get(in)[0], 1.5f);
  EXPECT_THROW(mview.set(out, row3, 10.0), std::invalid_argument);

  bview.put(in, row5, 11.0);
  EXPECT_TRUE(box.has_mail(in));
  EXPECT_THROW(bview.put(out, row5, 11.0), std::invalid_argument);

  tview.insert(in, out, 0, 12.0);
  EXPECT_EQ(table.fill(in), 1u);
  EXPECT_THROW(tview.insert(out, in, 0, 12.0), std::invalid_argument);

  // Reads stay unrestricted (cross-shard reads are the GNN's normal path).
  EXPECT_NO_THROW(mview.get(out));
  EXPECT_NO_THROW(bview.mail_ts(out));
  EXPECT_NO_THROW(tview.row(out));
}

TEST(ShardView, ResetClearsOnlyOwnedShard) {
  ShardMap map(4);
  VertexMemory mem(32, 2);
  const std::vector<float> row(2, 3.0f);
  for (NodeId v = 0; v < 32; ++v) mem.set(v, row, 5.0);

  VertexMemoryShard(mem, map, 1).reset();
  for (NodeId v = 0; v < 32; ++v) {
    if (map.shard_of(v) == 1) {
      EXPECT_EQ(mem.get(v)[0], 0.0f);
      EXPECT_EQ(mem.last_update(v), 0.0);
    } else {
      EXPECT_EQ(mem.get(v)[0], 3.0f);
      EXPECT_EQ(mem.last_update(v), 5.0);
    }
  }
}

TEST(ShardView, DisjointShardsMutateConcurrentlyWithoutLocks) {
  // The property the whole layer is built on: disjoint shards touch
  // disjoint rows, so per-shard views can be driven from different threads
  // with no synchronization at all (run under TSan in CI).
  const std::size_t shards = 4;
  const NodeId n = 4096;
  ShardMap map(shards);
  VertexMemory mem(n, 4);
  VertexMailbox box(n, 6);
  NeighborTable table(n, 3);

  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      VertexMemoryShard mview(mem, map, s);
      VertexMailboxShard bview(box, map, s);
      NeighborTableShard tview(table, map, s);
      const std::vector<float> mrow(4, static_cast<float>(s + 1));
      const std::vector<float> brow(6, static_cast<float>(s + 1));
      for (NodeId v = 0; v < n; ++v) {
        if (!mview.owns(v)) continue;
        mview.set(v, mrow, static_cast<double>(s + 1));
        bview.put(v, brow, static_cast<double>(s + 1));
        tview.insert(v, (v + 1) % n, 0, static_cast<double>(s + 1));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (NodeId v = 0; v < n; ++v) {
    const auto expect = static_cast<float>(map.shard_of(v) + 1);
    EXPECT_EQ(mem.get(v)[0], expect);
    EXPECT_EQ(box.mail(v)[0], expect);
    EXPECT_EQ(table.fill(v), 1u);
  }
}

TEST(ShardLockTable, GuardsSameShardAcrossThreads) {
  // Exclusive lock on a vertex's shard blocks shared locks on any vertex
  // of that shard — the reader/writer protection the serving lanes use.
  ShardLockTable locks(2);
  NodeId a = 0, b = 1;
  while (locks.map().shard_of(b) != locks.map().shard_of(a)) ++b;

  int value = 0;
  {
    std::unique_lock writer(locks.mutex_of(a));
    std::thread reader([&] {
      std::shared_lock r(locks.mutex_of(b));  // same shard: waits for writer
      EXPECT_EQ(value, 42);
    });
    value = 42;
    writer.unlock();
    reader.join();
  }
}

}  // namespace
}  // namespace tgnn::graph
