#include "graph/neighbor_finder.hpp"

#include <gtest/gtest.h>

namespace tgnn::graph {
namespace {

TEST(NeighborFinder, ReturnsMostRecentStrictlyBefore) {
  NeighborFinder nf(5);
  nf.insert({0, 1, 1.0, 10});
  nf.insert({0, 2, 2.0, 11});
  nf.insert({0, 3, 3.0, 12});

  const auto hits = nf.most_recent(0, 3.0, 10);  // strictly before t=3
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].node, 1u);
  EXPECT_EQ(hits[1].node, 2u);
}

TEST(NeighborFinder, RespectsK) {
  NeighborFinder nf(5);
  for (int i = 0; i < 8; ++i)
    nf.insert({0, static_cast<NodeId>(1 + i % 4), static_cast<double>(i), 0});
  const auto hits = nf.most_recent(0, 100.0, 3);
  ASSERT_EQ(hits.size(), 3u);
  // Oldest -> newest of the 3 most recent (ts 5, 6, 7).
  EXPECT_DOUBLE_EQ(hits[0].ts, 5.0);
  EXPECT_DOUBLE_EQ(hits[2].ts, 7.0);
}

TEST(NeighborFinder, BothEndpointsRecorded) {
  NeighborFinder nf(5);
  nf.insert({2, 3, 1.0, 7});
  EXPECT_EQ(nf.degree(2), 1u);
  EXPECT_EQ(nf.degree(3), 1u);
  const auto hits = nf.most_recent(3, 2.0, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, 2u);
  EXPECT_EQ(hits[0].eid, 7u);
}

TEST(NeighborFinder, EmptyForUnseenNode) {
  NeighborFinder nf(5);
  EXPECT_TRUE(nf.most_recent(4, 10.0, 3).empty());
}

TEST(NeighborFinder, OutOfRangeThrows) {
  NeighborFinder nf(2);
  EXPECT_THROW(nf.most_recent(2, 1.0, 1), std::out_of_range);
  EXPECT_THROW(nf.insert({0, 5, 1.0, 0}), std::out_of_range);
}

TEST(NeighborFinder, ClearRemovesHistory) {
  NeighborFinder nf(3);
  nf.insert({0, 1, 1.0, 0});
  nf.clear();
  EXPECT_EQ(nf.degree(0), 0u);
  EXPECT_TRUE(nf.most_recent(1, 5.0, 3).empty());
}

}  // namespace
}  // namespace tgnn::graph
