#include "graph/vertex_state.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tgnn::graph {
namespace {

TEST(VertexMemory, SetGetRoundTrip) {
  VertexMemory m(3, 4);
  const std::vector<float> v = {1, 2, 3, 4};
  m.set(1, v, 10.0);
  const auto got = m.get(1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], v[i]);
  EXPECT_DOUBLE_EQ(m.last_update(1), 10.0);
  EXPECT_DOUBLE_EQ(m.last_update(0), 0.0);
}

TEST(VertexMemory, StartsZero) {
  VertexMemory m(2, 3);
  for (float x : m.get(0)) EXPECT_EQ(x, 0.0f);
}

TEST(VertexMemory, ResetClears) {
  VertexMemory m(2, 2);
  m.set(0, std::vector<float>{5, 6}, 3.0);
  m.reset();
  EXPECT_EQ(m.get(0)[0], 0.0f);
  EXPECT_DOUBLE_EQ(m.last_update(0), 0.0);
}

TEST(VertexMemory, RejectsBadAccess) {
  VertexMemory m(2, 2);
  EXPECT_THROW(m.get(2), std::out_of_range);
  EXPECT_THROW(m.set(0, std::vector<float>{1.0f}, 0.0),
               std::invalid_argument);
}

TEST(VertexMemory, RowBytes) {
  VertexMemory m(2, 100);
  EXPECT_EQ(m.row_bytes(), 400u);
}

TEST(VertexMailbox, PutOverwritesMostRecent) {
  VertexMailbox mb(2, 3);
  EXPECT_FALSE(mb.has_mail(0));
  mb.put(0, std::vector<float>{1, 2, 3}, 5.0);
  ASSERT_TRUE(mb.has_mail(0));
  EXPECT_DOUBLE_EQ(mb.mail_ts(0), 5.0);
  mb.put(0, std::vector<float>{7, 8, 9}, 6.0);
  EXPECT_EQ(mb.mail(0)[0], 7.0f);
  EXPECT_DOUBLE_EQ(mb.mail_ts(0), 6.0);
}

TEST(VertexMailbox, ResetInvalidates) {
  VertexMailbox mb(1, 2);
  mb.put(0, std::vector<float>{1, 2}, 1.0);
  mb.reset();
  EXPECT_FALSE(mb.has_mail(0));
}

TEST(VertexMailbox, RejectsBadAccess) {
  VertexMailbox mb(1, 2);
  EXPECT_THROW(mb.mail(3), std::out_of_range);
  EXPECT_THROW(mb.put(0, std::vector<float>{1.0f}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::graph
