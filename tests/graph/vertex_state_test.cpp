#include "graph/vertex_state.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tgnn::graph {
namespace {

TEST(VertexMemory, SetGetRoundTrip) {
  VertexMemory m(3, 4);
  const std::vector<float> v = {1, 2, 3, 4};
  m.set(1, v, 10.0);
  const auto got = m.get(1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], v[i]);
  EXPECT_DOUBLE_EQ(m.last_update(1), 10.0);
  EXPECT_DOUBLE_EQ(m.last_update(0), 0.0);
}

TEST(VertexMemory, StartsZero) {
  VertexMemory m(2, 3);
  for (float x : m.get(0)) EXPECT_EQ(x, 0.0f);
}

TEST(VertexMemory, ResetClears) {
  VertexMemory m(2, 2);
  m.set(0, std::vector<float>{5, 6}, 3.0);
  m.reset();
  EXPECT_EQ(m.get(0)[0], 0.0f);
  EXPECT_DOUBLE_EQ(m.last_update(0), 0.0);
}

TEST(VertexMemory, RejectsBadAccess) {
  VertexMemory m(2, 2);
  EXPECT_THROW(m.get(2), std::out_of_range);
  EXPECT_THROW(m.set(0, std::vector<float>{1.0f}, 0.0),
               std::invalid_argument);
}

TEST(VertexMemory, RowBytes) {
  VertexMemory m(2, 100);
  EXPECT_EQ(m.row_bytes(), 400u);
}

TEST(VertexMailbox, PutOverwritesMostRecent) {
  VertexMailbox mb(2, 3);
  EXPECT_FALSE(mb.has_mail(0));
  mb.put(0, std::vector<float>{1, 2, 3}, 5.0);
  ASSERT_TRUE(mb.has_mail(0));
  EXPECT_DOUBLE_EQ(mb.mail_ts(0), 5.0);
  mb.put(0, std::vector<float>{7, 8, 9}, 6.0);
  EXPECT_EQ(mb.mail(0)[0], 7.0f);
  EXPECT_DOUBLE_EQ(mb.mail_ts(0), 6.0);
}

TEST(VertexMailbox, ResetInvalidates) {
  VertexMailbox mb(1, 2);
  mb.put(0, std::vector<float>{1, 2}, 1.0);
  mb.reset();
  EXPECT_FALSE(mb.has_mail(0));
}

TEST(VertexMailbox, RejectsBadAccess) {
  VertexMailbox mb(1, 2);
  EXPECT_THROW(mb.mail(3), std::out_of_range);
  EXPECT_THROW(mb.put(0, std::vector<float>{1.0f}, 0.0),
               std::invalid_argument);
}

TEST(VertexMailbox, ClearRowDropsMailTimestampAndPayload) {
  // clear_row must leave the row indistinguishable from a never-mailed
  // one: valid byte, timestamp and payload all reset together.
  VertexMailbox mb(3, 2);
  mb.put(1, std::vector<float>{3, 4}, 7.0);
  mb.put(2, std::vector<float>{5, 6}, 8.0);
  mb.clear_row(1);
  EXPECT_FALSE(mb.has_mail(1));
  EXPECT_DOUBLE_EQ(mb.mail_ts(1), 0.0);
  for (float x : mb.mail(1)) EXPECT_EQ(x, 0.0f);
  // Neighbouring rows untouched.
  ASSERT_TRUE(mb.has_mail(2));
  EXPECT_EQ(mb.mail(2)[0], 5.0f);
}

TEST(VertexMailbox, ClearRowThenPutBehavesLikeFirstMail) {
  VertexMailbox mb(1, 2);
  mb.put(0, std::vector<float>{1, 2}, 1.0);
  mb.clear_row(0);
  mb.put(0, std::vector<float>{9, 10}, 2.0);
  ASSERT_TRUE(mb.has_mail(0));
  EXPECT_EQ(mb.mail(0)[1], 10.0f);
  EXPECT_DOUBLE_EQ(mb.mail_ts(0), 2.0);
}

VertexStoreOptions tiny_budget(std::size_t row_bytes, std::size_t num_rows) {
  VertexStoreOptions o;
  o.rows_per_page = 4;
  o.budget_bytes = row_bytes * num_rows / 10;  // ~10% resident
  return o;
}

TEST(VertexMailbox, ClearRowAndResetWorkOutOfCore) {
  constexpr NodeId kN = 200;
  VertexMailbox mb(kN, 2, tiny_budget(VertexMailbox::store_row_bytes(2), kN));
  ASSERT_TRUE(mb.out_of_core());
  for (NodeId v = 0; v < kN; ++v)
    mb.put(v, std::vector<float>{float(v), float(v) + 1}, double(v));
  mb.clear_row(50);
  EXPECT_FALSE(mb.has_mail(50));
  EXPECT_TRUE(mb.has_mail(51));
  mb.reset();
  for (NodeId v = 0; v < kN; v += 7) {
    EXPECT_FALSE(mb.has_mail(v));
    EXPECT_DOUBLE_EQ(mb.mail_ts(v), 0.0);
  }
}

TEST(VertexMailbox, PinnedMailSpanStaysValidUnderChurn) {
  // The engine holds mail() spans across a stage while other lanes fault
  // pages in and out; a pin must keep the span's backing frame in place.
  constexpr NodeId kN = 200;
  VertexMailbox mb(kN, 2, tiny_budget(VertexMailbox::store_row_bytes(2), kN));
  ASSERT_TRUE(mb.out_of_core());
  mb.put(0, std::vector<float>{42, 43}, 1.0);
  const std::vector<NodeId> pinned = {0};
  mb.pin_rows(pinned);
  const auto span = mb.mail(0);
  for (NodeId v = 1; v < kN; ++v)  // evict everything else repeatedly
    mb.put(v, std::vector<float>{float(v), 0}, 1.0);
  EXPECT_EQ(span[0], 42.0f);  // same memory, still intact
  EXPECT_EQ(span.data(), mb.mail(0).data());
  mb.unpin_rows(pinned);
}

TEST(VertexMemory, BudgetedMatchesResidentBitExactly) {
  // Mini-fuzz: the same deterministic write/read mix against an
  // all-resident table and a ~10%-budget table must agree bit-for-bit.
  constexpr NodeId kN = 300;
  constexpr std::size_t kDim = 5;
  VertexMemory a(kN, kDim);
  VertexMemory b(kN, kDim,
                 tiny_budget(VertexMemory::store_row_bytes(kDim), kN));
  ASSERT_FALSE(a.out_of_core());
  ASSERT_TRUE(b.out_of_core());
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  std::vector<float> val(kDim);
  for (int step = 0; step < 2000; ++step) {
    const NodeId v = next() % kN;
    if (next() % 3 != 0) {
      for (auto& x : val) x = static_cast<float>(next() % 1000) * 0.125f;
      const double ts = static_cast<double>(step);
      a.set(v, val, ts);
      b.set(v, val, ts);
    } else {
      const auto ga = a.get(v);
      const auto gb = b.get(v);
      for (std::size_t i = 0; i < kDim; ++i) EXPECT_EQ(ga[i], gb[i]);
      EXPECT_DOUBLE_EQ(a.last_update(v), b.last_update(v));
    }
  }
  for (NodeId v = 0; v < kN; ++v) {
    const auto ga = a.get(v);
    const auto gb = b.get(v);
    for (std::size_t i = 0; i < kDim; ++i) EXPECT_EQ(ga[i], gb[i]);
  }
  const auto st = b.store_stats();
  EXPECT_GT(st.evictions, 0u);  // the budget actually bit
}

}  // namespace
}  // namespace tgnn::graph
