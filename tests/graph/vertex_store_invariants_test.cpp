// The §IV-B cache contract as a falsifiable property: a healthy store
// passes check_invariants() at every point of its lifecycle, and a
// deliberately corrupted one — pin forged behind the redundant total,
// write-back queue shuffled out of chronology, page table desynced — is
// caught on the next validation. VertexStoreTestPeer is the only code in
// the tree allowed to reach into the store's guts, and exists purely to
// prove the validators can actually fire.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/vertex_store.hpp"

namespace tgnn::graph {

// Friend of VertexStore (declared in vertex_store.hpp): each hook forges
// exactly one internal inconsistency, taking the store lock like any
// legitimate mutation path would.
struct VertexStoreTestPeer {
  static void forge_pin(VertexStore& s) {
    util::MutexLock lk(s.mu_);
    for (auto& fr : s.frames_)
      if (fr.page >= 0) {
        ++fr.pins;  // per-frame count moves, total_pins_ does not
        return;
      }
    FAIL() << "no resident frame to corrupt";
  }

  static void shuffle_writeback_queue(VertexStore& s) {
    util::MutexLock lk(s.mu_);
    s.next_seq_ = 10;
    s.wb_queue_.clear();
    s.wb_queue_.push_back({0, 5});
    s.wb_queue_.push_back({1, 3});  // older seq behind a newer one
  }

  static void desync_page_table(VertexStore& s) {
    util::MutexLock lk(s.mu_);
    for (std::size_t p = 0; p < s.num_pages_; ++p)
      if (s.frame_of_[p] >= 0) {
        s.frame_of_[p] = -1;  // drop the mapping, leave the frame claiming it
        return;
      }
    FAIL() << "no mapped page to corrupt";
  }

  static void leak_spill_flag(VertexStore& s) {
    util::MutexLock lk(s.mu_);
    s.on_disk_[s.num_pages_ - 1] = 1;  // spilled, but no file was created
  }
};

namespace {

constexpr std::size_t kRowBytes = 64;

VertexStore oocore_store() {
  VertexStoreOptions o;
  o.rows_per_page = 8;
  o.budget_bytes = 6 * 8 * kRowBytes;  // 6 frames over 16 pages
  return {128, kRowBytes, std::move(o)};
}

std::vector<NodeId> some_rows() { return {0, 1, 9, 17, 33}; }

TEST(VertexStoreInvariants, HealthyStorePassesThroughItsLifecycle) {
  auto s = oocore_store();
  ASSERT_TRUE(s.out_of_core());
  s.check_invariants();
  const auto rows = some_rows();
  s.pin_rows(rows);
  s.check_invariants();
  for (const NodeId r : rows) *s.row_mut(r) = std::byte{0x5A};
  s.check_invariants();
  s.unpin_rows(rows);  // queues write-backs
  s.check_invariants();
  s.reset();
  s.check_invariants();
}

TEST(VertexStoreInvariants, ResidentStoreIsExemptByDesign) {
  VertexStore s(16, kRowBytes);  // no budget: flat allocation, no tables
  EXPECT_FALSE(s.out_of_core());
  s.check_invariants();
}

TEST(VertexStoreInvariantsDeathTest, ForgedPinCountIsCaught) {
  auto s = oocore_store();
  s.pin_rows(some_rows());
  VertexStoreTestPeer::forge_pin(s);
  EXPECT_DEATH(s.check_invariants(),
               "pin counts disagree with the outstanding-pin total");
}

TEST(VertexStoreInvariantsDeathTest, OutOfOrderWritebackQueueIsCaught) {
  auto s = oocore_store();
  VertexStoreTestPeer::shuffle_writeback_queue(s);
  EXPECT_DEATH(s.check_invariants(), "out of chronological order");
}

TEST(VertexStoreInvariantsDeathTest, PageTableDesyncIsCaught) {
  auto s = oocore_store();
  s.pin_rows(some_rows());
  VertexStoreTestPeer::desync_page_table(s);
  EXPECT_DEATH(s.check_invariants(), "tables disagree");
}

TEST(VertexStoreInvariantsDeathTest, SpillFlagWithoutFileIsCaught) {
  auto s = oocore_store();
  VertexStoreTestPeer::leak_spill_flag(s);
  EXPECT_DEATH(s.check_invariants(), "never created");
}

TEST(VertexStoreInvariantsDeathTest, UnbalancedUnpinAbortsUnconditionally) {
  // Not a validator — the always-on TGNN_CHECK on the unpin path itself.
  auto s = oocore_store();
  const std::vector<NodeId> rows{3};
  s.pin_rows(rows);
  s.unpin_rows(rows);
  EXPECT_DEATH(s.unpin_rows(rows), "unpin");
}

}  // namespace
}  // namespace tgnn::graph
