#include "graph/vertex_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/paged_file.hpp"

namespace tgnn::graph {
namespace {

// Fill row r with a value derived from (r, salt) — distinct per call site,
// so spill round-trips can be checked bit-exactly.
void fill_row(VertexStore& s, std::size_t r, std::uint32_t salt) {
  std::byte* p = s.row_mut(r);
  for (std::size_t i = 0; i < s.row_bytes(); ++i)
    p[i] = static_cast<std::byte>((r * 31 + salt + i) & 0xff);
}

bool check_row(const VertexStore& s, std::size_t r, std::uint32_t salt) {
  const std::byte* p = s.row(r);
  for (std::size_t i = 0; i < s.row_bytes(); ++i)
    if (p[i] != static_cast<std::byte>((r * 31 + salt + i) & 0xff))
      return false;
  return true;
}

VertexStoreOptions small_opts(std::size_t budget_pages) {
  VertexStoreOptions o;
  o.rows_per_page = 8;
  o.budget_bytes = budget_pages * 8 * 64;  // row_bytes 64 below
  o.writeback_batch = 4;
  return o;
}

TEST(PagedFile, RoundTripsPagesBitExactly) {
  PagedFile f(/*page_bytes=*/256, /*num_pages=*/4);
  EXPECT_FALSE(f.open());  // lazy: no file until the first spill
  std::vector<std::byte> page(256), back(256);
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::byte>(i * 7);
  f.write_page(2, page.data());
  EXPECT_TRUE(f.open());
  f.read_page(2, back.data());
  EXPECT_EQ(std::memcmp(page.data(), back.data(), page.size()), 0);
}

TEST(PagedFile, ResetDropsContentToZero) {
  PagedFile f(64, 2);
  std::vector<std::byte> page(64, std::byte{0xAB}), back(64);
  f.write_page(0, page.data());
  f.reset();
  f.read_page(0, back.data());
  for (auto b : back) EXPECT_EQ(b, std::byte{0});
}

TEST(PagedFile, RejectsOutOfRangeAndUnwrittenReads) {
  PagedFile f(64, 2);
  std::vector<std::byte> buf(64);
  // Both misuses surface as the typed spill error, naming the operation
  // and the failing page so store-level retries can report precisely.
  try {
    f.write_page(2, buf.data());
    FAIL() << "out-of-range write accepted";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.page(), 2u);
    EXPECT_NE(std::string(e.what()).find("write_page"), std::string::npos);
  }
  try {
    f.read_page(0, buf.data());  // never open
    FAIL() << "read before any write accepted";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.page(), 0u);
  }
}

TEST(VertexStore, ZeroBudgetIsAllResident) {
  VertexStore s(100, 64);
  EXPECT_FALSE(s.out_of_core());
  // Pins/prefetch are free no-ops; stats stay zero.
  std::vector<NodeId> rows = {1, 2, 3};
  s.pin_rows(rows);
  s.unpin_rows(rows);
  s.prefetch_rows(rows);
  EXPECT_EQ(s.stats().hits + s.stats().misses, 0u);
  EXPECT_DOUBLE_EQ(s.stats().hit_rate(), 1.0);
}

TEST(VertexStore, GenerousBudgetDegeneratesToResident) {
  VertexStore s(100, 64, small_opts(/*budget_pages=*/1000));
  EXPECT_FALSE(s.out_of_core());
}

TEST(VertexStore, RowsStartZeroOutOfCore) {
  VertexStore s(256, 64, small_opts(4));
  ASSERT_TRUE(s.out_of_core());
  for (std::size_t r = 0; r < 256; r += 17) {
    const std::byte* p = s.row(r);
    for (std::size_t i = 0; i < s.row_bytes(); ++i)
      EXPECT_EQ(p[i], std::byte{0});
  }
}

TEST(VertexStore, RoundsRowBytesUpToEight) {
  VertexStore s(4, 13);
  EXPECT_EQ(s.row_bytes(), 16u);
}

TEST(VertexStore, SpillRoundTripIsBitExact) {
  // 32 pages of 8 rows, 4 frames: writing every row forces continuous
  // eviction; every row must read back exactly despite the spill churn.
  VertexStore s(256, 64, small_opts(4));
  ASSERT_TRUE(s.out_of_core());
  for (std::size_t r = 0; r < 256; ++r) fill_row(s, r, 5);
  for (std::size_t r = 0; r < 256; ++r) EXPECT_TRUE(check_row(s, r, 5));
  const auto st = s.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.spill_page_writes, 0u);
  EXPECT_GT(st.spill_page_reads, 0u);
}

TEST(VertexStore, PinnedRowsSurviveEvictionPressure) {
  VertexStore s(256, 64, small_opts(4));
  std::vector<NodeId> pinned = {0, 1, 2, 3, 4, 5, 6, 7};  // page 0
  for (NodeId r : pinned) fill_row(s, r, 9);
  s.pin_rows(pinned);
  const std::byte* before = s.row(0);
  // Churn through every other page; page 0 must not move or spill-corrupt.
  for (std::size_t r = 8; r < 256; ++r) fill_row(s, r, 9);
  EXPECT_EQ(s.row(0), before);  // pointer stability under pin
  for (NodeId r : pinned) EXPECT_TRUE(check_row(s, r, 9));
  s.unpin_rows(pinned);
  for (std::size_t r = 0; r < 256; ++r) EXPECT_TRUE(check_row(s, r, 9));
}

TEST(VertexStore, PinCountsHitsAndMisses) {
  VertexStore s(256, 64, small_opts(4));
  std::vector<NodeId> rows = {0, 1, 2};  // one page
  s.pin_rows(rows);
  auto st = s.stats();
  EXPECT_EQ(st.misses, 1u);  // first row faults the page
  EXPECT_EQ(st.hits, 2u);    // the rest hit it
  s.unpin_rows(rows);
  s.pin_rows(rows);
  st = s.stats();
  EXPECT_EQ(st.hits, 5u);  // still resident
  s.unpin_rows(rows);
}

TEST(VertexStore, PrefetchMakesLaterPinsHit) {
  VertexStore s(256, 64, small_opts(4));
  std::vector<NodeId> rows = {40, 48, 56};  // three distinct pages
  s.prefetch_rows(rows);
  auto st = s.stats();
  EXPECT_EQ(st.prefetch_loads, 3u);
  EXPECT_EQ(st.misses, 0u);  // prefetch does not count as demand traffic
  s.pin_rows(rows);
  st = s.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 0u);
  s.unpin_rows(rows);
  s.prefetch_rows(rows);
  EXPECT_EQ(s.stats().prefetch_hits, 3u);
}

TEST(VertexStore, RedirtyOfQueuedPageCountsInvalidation) {
  VertexStore s(256, 64, small_opts(4));
  std::vector<NodeId> rows = {0};
  s.pin_rows(rows);
  fill_row(s, 0, 1);
  s.unpin_rows(rows);  // dirty page 0 queued for write-back (batch of 4)
  EXPECT_EQ(s.stats().writeback_invalidations, 0u);
  s.pin_rows(rows);
  fill_row(s, 0, 2);  // supersedes the queued version
  s.unpin_rows(rows);
  EXPECT_EQ(s.stats().writeback_invalidations, 1u);
  EXPECT_TRUE(check_row(s, 0, 2));  // newest version is what's visible
}

TEST(VertexStore, OvercommitGrowsWhenEverythingPinned) {
  VertexStore s(256, 64, small_opts(4));
  // Pin one row in more pages than there are frames: the store must grow
  // past the budget (and count it) rather than fail or deadlock.
  std::vector<NodeId> rows;
  for (std::size_t p = 0; p < 8; ++p)
    rows.push_back(static_cast<NodeId>(p * 8));
  s.pin_rows(rows);
  EXPECT_GT(s.stats().overcommit_frames, 0u);
  for (NodeId r : rows) fill_row(s, r, 3);
  for (NodeId r : rows) EXPECT_TRUE(check_row(s, r, 3));
  s.unpin_rows(rows);
}

TEST(VertexStore, ResetZeroesEverythingIncludingSpill) {
  VertexStore s(256, 64, small_opts(4));
  for (std::size_t r = 0; r < 256; ++r) fill_row(s, r, 8);  // spills
  s.reset();
  for (std::size_t r = 0; r < 256; r += 13) {
    const std::byte* p = s.row(r);
    for (std::size_t i = 0; i < s.row_bytes(); ++i)
      EXPECT_EQ(p[i], std::byte{0});
  }
}

TEST(VertexStore, ConcurrentPinnedAccessIsRaceFree) {
  // The contract the engine relies on: lanes pin disjoint row sets, then
  // read/write them lock-free while other lanes fault and evict around
  // them. 4 threads x 64 rows over a 4-frame store.
  VertexStore s(1024, 64, small_opts(4));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&s, t] {
      std::vector<NodeId> mine;
      for (int i = 0; i < 64; ++i)
        mine.push_back(static_cast<NodeId>(t * 256 + i * 4));
      for (int round = 0; round < 20; ++round) {
        s.pin_rows(mine);
        for (NodeId r : mine) fill_row(s, r, static_cast<std::uint32_t>(t));
        for (NodeId r : mine)
          EXPECT_TRUE(check_row(s, r, static_cast<std::uint32_t>(t)));
        s.unpin_rows(mine);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i < 64; ++i)
      EXPECT_TRUE(check_row(s, static_cast<NodeId>(t * 256 + i * 4),
                            static_cast<std::uint32_t>(t)));
}

}  // namespace
}  // namespace tgnn::graph
