#include "graph/neighbor_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tgnn::graph {
namespace {

TEST(NeighborTable, FifoEvictionKeepsNewest) {
  NeighborTable t(4, 3);
  for (int i = 0; i < 5; ++i)
    t.insert(0, static_cast<NodeId>(i % 4), static_cast<EdgeId>(i),
             static_cast<double>(i));
  const auto row = t.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0].ts, 2.0);  // oldest surviving
  EXPECT_DOUBLE_EQ(row[2].ts, 4.0);  // newest
}

TEST(NeighborTable, RowOrderIsChronological) {
  NeighborTable t(2, 5);
  for (int i = 0; i < 4; ++i)
    t.insert(1, 0, static_cast<EdgeId>(i), static_cast<double>(10 + i));
  const auto row = t.row(1);
  for (std::size_t i = 1; i < row.size(); ++i)
    EXPECT_LE(row[i - 1].ts, row[i].ts);
}

TEST(NeighborTable, InsertEdgeUpdatesBothEndpoints) {
  NeighborTable t(4, 2);
  t.insert_edge({1, 3, 7.5, 42});
  ASSERT_EQ(t.fill(1), 1u);
  ASSERT_EQ(t.fill(3), 1u);
  EXPECT_EQ(t.row(1)[0].node, 3u);
  EXPECT_EQ(t.row(3)[0].node, 1u);
  EXPECT_EQ(t.row(3)[0].eid, 42u);
}

TEST(NeighborTable, FillSaturatesAtCapacity) {
  NeighborTable t(2, 3);
  for (int i = 0; i < 10; ++i) t.insert(0, 1, 0, static_cast<double>(i));
  EXPECT_EQ(t.fill(0), 3u);
}

TEST(NeighborTable, RejectsBadArgs) {
  EXPECT_THROW(NeighborTable(2, 0), std::invalid_argument);
  NeighborTable t(2, 2);
  EXPECT_THROW(t.insert(5, 0, 0, 0.0), std::out_of_range);
  EXPECT_THROW(t.row(5), std::out_of_range);
}

TEST(NeighborTable, RowBytesLayout) {
  NeighborTable t(1, 10);
  EXPECT_EQ(t.row_bytes(), 10u * 12u);
}

// Property: for a random chronological stream, the FIFO table's row equals
// the unbounded finder's mr most recent interactions — the equivalence that
// justifies replacing the temporal sampler with the hardware FIFO (§I).
class FifoEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoEquivalence, MatchesUnboundedFinderMostRecent) {
  const std::size_t mr = GetParam();
  const NodeId n = 20;
  NeighborTable table(n, mr);
  NeighborFinder finder(n);
  tgnn::Rng rng(mr * 101);

  double ts = 0.0;
  for (int i = 0; i < 500; ++i) {
    ts += rng.uniform() + 0.01;
    const auto a = static_cast<NodeId>(rng.uniform_int(n));
    auto b = static_cast<NodeId>(rng.uniform_int(n));
    if (b == a) b = (b + 1) % n;
    const TemporalEdge e{a, b, ts, static_cast<EdgeId>(i)};
    table.insert_edge(e);
    finder.insert(e);
  }
  const double t_query = ts + 1.0;
  for (NodeId v = 0; v < n; ++v) {
    const auto expect = finder.most_recent(v, t_query, mr);
    const auto got = table.row(v);
    ASSERT_EQ(got.size(), expect.size()) << "node " << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].node, expect[i].node);
      EXPECT_EQ(got[i].eid, expect[i].eid);
      EXPECT_DOUBLE_EQ(got[i].ts, expect[i].ts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, FifoEquivalence,
                         ::testing::Values(1, 2, 4, 10, 16));

}  // namespace
}  // namespace tgnn::graph
