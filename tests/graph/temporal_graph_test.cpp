#include "graph/temporal_graph.hpp"

#include <gtest/gtest.h>

namespace tgnn::graph {
namespace {

std::vector<TemporalEdge> chain(std::size_t n, double dt = 1.0) {
  std::vector<TemporalEdge> e;
  for (std::size_t i = 0; i < n; ++i)
    e.push_back({static_cast<NodeId>(i % 4), static_cast<NodeId>((i + 1) % 4),
                 static_cast<double>(i) * dt, 0});
  return e;
}

TEST(TemporalGraph, AssignsSequentialEids) {
  TemporalGraph g(4, chain(5));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(g.edge(i).eid, i);
}

TEST(TemporalGraph, RejectsOutOfRangeNodes) {
  std::vector<TemporalEdge> e = {{0, 9, 0.0, 0}};
  EXPECT_THROW(TemporalGraph(4, e), std::invalid_argument);
}

TEST(TemporalGraph, RejectsNonChronological) {
  std::vector<TemporalEdge> e = {{0, 1, 5.0, 0}, {1, 2, 3.0, 0}};
  EXPECT_THROW(TemporalGraph(4, e), std::invalid_argument);
}

TEST(TemporalGraph, AllowsEqualTimestamps) {
  std::vector<TemporalEdge> e = {{0, 1, 5.0, 0}, {1, 2, 5.0, 0}};
  EXPECT_NO_THROW(TemporalGraph(4, e));
}

TEST(TemporalGraph, FixedSizeBatchesCoverRange) {
  TemporalGraph g(4, chain(10));
  const auto batches = g.fixed_size_batches(2, 9, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].begin, 2u);
  EXPECT_EQ(batches[0].end, 5u);
  EXPECT_EQ(batches[2].begin, 8u);
  EXPECT_EQ(batches[2].end, 9u);  // short tail
}

TEST(TemporalGraph, FixedSizeBatchesRejectBadArgs) {
  TemporalGraph g(4, chain(10));
  EXPECT_THROW(g.fixed_size_batches(0, 5, 0), std::invalid_argument);
  EXPECT_THROW(g.fixed_size_batches(5, 3, 2), std::invalid_argument);
  EXPECT_THROW(g.fixed_size_batches(0, 100, 2), std::invalid_argument);
}

TEST(TemporalGraph, FixedWindowBatchesSplitByTime) {
  // Timestamps 0..9; windows of 2.5s -> [0,2.5) has ts 0,1,2; etc.
  TemporalGraph g(4, chain(10));
  const auto batches = g.fixed_window_batches(0, 10, 2.5);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[1].size(), 2u);  // ts 3, 4
  EXPECT_EQ(batches[3].end, 10u);
}

TEST(TemporalGraph, FixedWindowProducesEmptyWindows) {
  std::vector<TemporalEdge> e = {{0, 1, 0.0, 0}, {1, 2, 10.0, 0}};
  TemporalGraph g(4, e);
  const auto batches = g.fixed_window_batches(0, 2, 1.0);
  // First window holds edge 0, then 9 empty windows, then edge 1.
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  EXPECT_EQ(total, 2u);
  EXPECT_GE(batches.size(), 10u);
}

TEST(TemporalGraph, SpanAccessors) {
  TemporalGraph g(4, chain(6));
  EXPECT_EQ(g.edges().size(), 6u);
  EXPECT_EQ(g.edges({2, 5}).size(), 3u);
  EXPECT_DOUBLE_EQ(g.t_min(), 0.0);
  EXPECT_DOUBLE_EQ(g.t_max(), 5.0);
}

}  // namespace
}  // namespace tgnn::graph
